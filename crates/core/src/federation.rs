//! The federation: clients, global parameters, pluggable transport, and the
//! shared round plumbing used by every algorithm.

use crate::aggregate::StreamingAggregator;
use crate::client::{Client, LocalReport};
use crate::comm::{
    BroadcastDelivery, CommStats, Delivery, FaultStats, LinkOutcome, MsgKind, PerfectTransport,
    RemoteTransport, Transport,
};
use crate::compress::{
    compress_plain, decode_plain_into, decode_upload_into, ef_compress_update, CompressedVec,
    Compression,
};
use crate::delta::DeltaTable;
use crate::dp::{privatize_delta, DpConfig};
use crate::eval::{evaluate, EvalResult};
use crate::registry::{ClientDataSource, ClientRegistry};
use crate::rules::LocalRule;
use crate::sampling::{sample_clients, SelectionStream};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfl_data::{Dataset, FederatedData};
use rfl_nn::{
    Adam, CnnClassifier, CnnConfig, LinearNet, LogisticRegression, LstmClassifier, LstmConfig,
    MlpClassifier, Model, Optimizer, RmsProp, Sgd,
};
use rfl_trace::{SpanKind, Tracer};
use std::sync::Arc;

/// Run-level hyper-parameters shared by all algorithms.
#[derive(Clone, Copy, Debug)]
pub struct FlConfig {
    /// Communication rounds `C`.
    pub rounds: usize,
    /// Local steps per round `E`.
    pub local_steps: usize,
    /// Local mini-batch size `B`.
    pub batch_size: usize,
    /// Client sample ratio `SR` (1.0 = full participation).
    pub sample_ratio: f32,
    /// Evaluate the global model on the test set every `eval_every` rounds.
    pub eval_every: usize,
    /// Run selected clients' local training on worker threads.
    pub parallel: bool,
    /// Global-norm gradient clip applied to the assembled local gradient
    /// (data gradient + algorithm corrections). Standard stabilization for
    /// control-variate methods; `None` disables. Rarely binds at the paper's
    /// learning rates, but prevents SCAFFOLD's runaway feedback loop on
    /// high-variance synthetic data.
    pub clip_grad_norm: Option<f32>,
    /// Batch size of the δ probe — the forward passes estimating a client's
    /// mean feature embedding `δ_k` for the regularizer sync. `None` uses
    /// the historical default `batch_size.max(32)`: probing is a pure
    /// forward pass, so it benefits from larger batches than training, and
    /// small training batch sizes are floored at 32.
    pub delta_probe_batch: Option<usize>,
    /// Server RNG seed (client RNGs derive from the federation seed).
    pub seed: u64,
    /// Upload-compression policy: model uploads and δ syncs cross the
    /// transport as exact-framed [`CompressedVec`] messages with per-client
    /// error feedback. [`Compression::None`] (the default in every preset)
    /// keeps the dense wire path and its pinned byte accounting.
    pub compression: Compression,
}

impl FlConfig {
    /// The paper's cross-silo setting (N = 20, E = 5, SR = 1.0).
    pub fn cross_silo() -> Self {
        FlConfig {
            rounds: 60,
            local_steps: 5,
            batch_size: 32,
            sample_ratio: 1.0,
            eval_every: 1,
            parallel: true,
            clip_grad_norm: Some(10.0),
            delta_probe_batch: None,
            seed: 0,
            compression: Compression::None,
        }
    }

    /// The paper's cross-device setting (N = 500, E = 10, SR = 0.2).
    pub fn cross_device() -> Self {
        FlConfig {
            rounds: 60,
            local_steps: 10,
            batch_size: 32,
            sample_ratio: 0.2,
            eval_every: 1,
            parallel: true,
            clip_grad_norm: Some(10.0),
            delta_probe_batch: None,
            seed: 0,
            compression: Compression::None,
        }
    }

    /// The effective δ-probe batch size (see
    /// [`FlConfig::delta_probe_batch`]).
    pub fn probe_batch(&self) -> usize {
        self.delta_probe_batch.unwrap_or(self.batch_size.max(32))
    }
}

/// Model constructors — pure data so federations can be rebuilt per seed.
#[derive(Clone, Copy, Debug)]
pub enum ModelFactory {
    Cnn(CnnConfig),
    Lstm(LstmConfig),
    Logistic {
        dim: usize,
        classes: usize,
        l2: f32,
    },
    LinearNet {
        dim: usize,
        feature_dim: usize,
        classes: usize,
        l2: f32,
    },
    Mlp {
        dim: usize,
        hidden1: usize,
        hidden2: usize,
        classes: usize,
    },
}

impl ModelFactory {
    pub fn cnn(cfg: CnnConfig) -> Self {
        ModelFactory::Cnn(cfg)
    }

    pub fn lstm(cfg: LstmConfig) -> Self {
        ModelFactory::Lstm(cfg)
    }

    pub fn logistic(dim: usize, classes: usize, l2: f32) -> Self {
        ModelFactory::Logistic { dim, classes, l2 }
    }

    pub fn linear_net(dim: usize, feature_dim: usize, classes: usize, l2: f32) -> Self {
        ModelFactory::LinearNet {
            dim,
            feature_dim,
            classes,
            l2,
        }
    }

    /// Two-hidden-layer MLP over dense inputs (feature hook at `hidden2`).
    pub fn mlp(dim: usize, hidden1: usize, hidden2: usize, classes: usize) -> Self {
        ModelFactory::Mlp {
            dim,
            hidden1,
            hidden2,
            classes,
        }
    }

    /// Builds a model with weights derived from `seed`.
    pub fn build(&self, seed: u64) -> Box<dyn Model> {
        let mut rng = StdRng::seed_from_u64(seed);
        match *self {
            ModelFactory::Cnn(cfg) => Box::new(CnnClassifier::new(cfg, &mut rng)),
            ModelFactory::Lstm(cfg) => Box::new(LstmClassifier::new(cfg, &mut rng)),
            ModelFactory::Logistic { dim, classes, l2 } => {
                Box::new(LogisticRegression::new(dim, classes, l2, &mut rng))
            }
            ModelFactory::LinearNet {
                dim,
                feature_dim,
                classes,
                l2,
            } => Box::new(LinearNet::new(dim, feature_dim, classes, l2, &mut rng)),
            ModelFactory::Mlp {
                dim,
                hidden1,
                hidden2,
                classes,
            } => Box::new(MlpClassifier::new(
                dim,
                &[hidden1, hidden2],
                classes,
                &mut rng,
            )),
        }
    }
}

/// Local-optimizer constructors.
#[derive(Clone, Copy, Debug)]
pub enum OptimizerFactory {
    Sgd { lr: f32 },
    SgdMomentum { lr: f32, momentum: f32 },
    RmsProp { lr: f32 },
    Adam { lr: f32 },
}

impl OptimizerFactory {
    pub fn sgd(lr: f32) -> Self {
        OptimizerFactory::Sgd { lr }
    }

    pub fn sgd_momentum(lr: f32, momentum: f32) -> Self {
        OptimizerFactory::SgdMomentum { lr, momentum }
    }

    pub fn rmsprop(lr: f32) -> Self {
        OptimizerFactory::RmsProp { lr }
    }

    pub fn adam(lr: f32) -> Self {
        OptimizerFactory::Adam { lr }
    }

    pub fn build(&self) -> Box<dyn Optimizer> {
        match *self {
            OptimizerFactory::Sgd { lr } => Box::new(Sgd::new(lr)),
            OptimizerFactory::SgdMomentum { lr, momentum } => {
                Box::new(Sgd::with_momentum(lr, momentum))
            }
            OptimizerFactory::RmsProp { lr } => Box::new(RmsProp::new(lr)),
            OptimizerFactory::Adam { lr } => Box::new(Adam::new(lr)),
        }
    }
}

/// System heterogeneity: when installed on a [`Federation`], every
/// uniform-step training call ([`Federation::train_selected`]) draws each
/// client's local step count from `[min_steps, steps]` with a seeded hash of
/// `(seed, round, client)` — stragglers complete fewer local epochs. The
/// draw is stateless, so it is bit-reproducible at any thread budget and
/// identical across algorithms sharing a seed.
#[derive(Clone, Copy, Debug)]
pub struct StragglerModel {
    /// Seed of the per-round step draws.
    pub seed: u64,
    /// Minimum local steps a straggler completes (≥ 1).
    pub min_steps: usize,
}

impl StragglerModel {
    pub fn new(seed: u64, min_steps: usize) -> Self {
        assert!(min_steps >= 1, "stragglers still take at least one step");
        StragglerModel { seed, min_steps }
    }

    /// The step count client `k` completes in `round` when the nominal
    /// budget is `steps`.
    pub fn steps_for(&self, round: u64, client: usize, steps: usize) -> usize {
        if steps <= self.min_steps {
            return steps;
        }
        let mut h = crate::comm::mix64(self.seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        h = crate::comm::mix64(h ^ (client as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        self.min_steps + (h as usize) % (steps - self.min_steps + 1)
    }
}

/// Attaches drop/retry/deadline counters to a span — only when nonzero, so
/// perfect-transport span shapes are unchanged.
pub(crate) fn fault_counters(span: &mut rfl_trace::Span, faults: &FaultStats) {
    if faults.dropped > 0 {
        span.counter("dropped", faults.dropped);
    }
    if faults.retries > 0 {
        span.counter("retries", faults.retries);
    }
    if faults.deadline_drops > 0 {
        span.counter("deadline_drops", faults.deadline_drops);
    }
}

/// Round-addressable selection lookahead for the pipelined round engine
/// (see [`Federation::enable_pipelined_rounds`]).
struct Lookahead {
    stream: SelectionStream,
    sample_ratio: f32,
    /// Total rounds of the run — no prefetch wave is launched past the
    /// final round (it would strand persists in a wave nobody consumes).
    rounds: usize,
    /// `false` = streamed selection only, no background waves (the
    /// degenerate form the pipelined ≡ serial equivalence tests compare
    /// against).
    overlap: bool,
}

/// The federated system — simulated (local [`Client`] replicas) or
/// distributed (remote mode: clients are real processes behind a
/// [`RemoteTransport`], and the same round plumbing asks the wire instead
/// of the local replicas).
pub struct Federation {
    /// Eager mode: all `N` replicas, indexed by client id. Lazy mode: only
    /// the round's *active* clients, kept sorted by id (see `local_idx`).
    clients: Vec<Client>,
    /// Remote mode: `clients` is empty and every client-side operation is
    /// routed through the transport's [`RemoteTransport`] half.
    remote: bool,
    /// Lazy mode: the sharded descriptor/persist store that materializes
    /// clients on demand ([`Federation::lazy`]). `None` in eager/remote
    /// mode. Shared (`Arc`) with the pipelined engine's prefetch and
    /// hibernate worker threads.
    registry: Option<Arc<ClientRegistry>>,
    n_clients: usize,
    weights: Vec<f32>,
    global: Vec<f32>,
    transport: Box<dyn Transport>,
    test: Dataset,
    eval_model: Box<dyn Model>,
    parallel: bool,
    eval_batch: usize,
    tracer: Tracer,
    current_round: u64,
    straggler: Option<StragglerModel>,
    /// Pipelined round engine: round-addressable selection stream plus the
    /// lookahead bounds ([`Federation::enable_pipelined_rounds`]).
    lookahead: Option<Lookahead>,
    /// In-flight prefetch wave: clients for a *predicted* future selection,
    /// materializing on a spare thread while the current round trains. The
    /// next `ensure_active` consumes it — merging the ids it wanted and
    /// returning the rest to the registry shards.
    prefetch: Option<std::thread::JoinHandle<Vec<Client>>>,
    /// In-flight hibernate wave: the previous round's active clients being
    /// persisted in the background. At most one wave is alive at a time,
    /// and every materialization path joins it first, so a persist being
    /// written can never race a wake of the same client.
    hibernate_wave: Option<std::thread::JoinHandle<()>>,
    /// When set, `evict_active` hibernates on a background thread instead
    /// of inline (installed with the pipelined engine; wave-style drivers
    /// can toggle it separately via `set_background_hibernate`).
    background_hibernate: bool,
    /// Per-run streaming aggregation state; buffers are reused across
    /// rounds so the aggregate step allocates nothing once warm.
    agg: StreamingAggregator,
    /// Reused upload read buffer (local-mode `collect_*`).
    upload_buf: Vec<f32>,
    /// Upload-compression policy ([`Compression::None`] = dense wire path).
    compression: Compression,
    /// Compression workspaces, reused across rounds: EF update / local
    /// reconstruction scratch, the encoded payload, its round-tripped copy,
    /// and the decoded parameter vector handed to the fold visitor. Keeping
    /// these warm preserves the 0-allocs/step aggregation gate with
    /// compression enabled.
    comp_update: Vec<f32>,
    comp_recon: Vec<f32>,
    comp_payload: CompressedVec,
    comp_rt: CompressedVec,
    comp_decoded: Vec<f32>,
}

impl Federation {
    /// Builds the federation: every client starts from the same global
    /// initialization (derived from `seed`), with its own optimizer state
    /// and RNG stream.
    pub fn new(
        data: &FederatedData,
        model: ModelFactory,
        optimizer: OptimizerFactory,
        cfg: &FlConfig,
        seed: u64,
    ) -> Self {
        assert!(data.num_clients() >= 2, "need at least two clients");
        let eval_model = model.build(seed);
        let mut global = Vec::new();
        eval_model.read_params(&mut global);
        let clients = data
            .clients
            .iter()
            .enumerate()
            .map(|(k, d)| {
                let mut m = model.build(seed);
                m.write_params(&global);
                let mut c = Client::new(k, m, d.clone(), optimizer.build(), cfg.batch_size, seed);
                c.set_clip_grad_norm(cfg.clip_grad_norm);
                c
            })
            .collect();
        Federation {
            clients,
            remote: false,
            registry: None,
            n_clients: data.num_clients(),
            weights: data.client_weights(),
            global,
            transport: Box::new(PerfectTransport::new()),
            test: data.test.clone(),
            eval_model,
            parallel: cfg.parallel,
            eval_batch: 64,
            tracer: Tracer::disabled(),
            current_round: 0,
            straggler: None,
            lookahead: None,
            prefetch: None,
            hibernate_wave: None,
            background_hibernate: false,
            agg: StreamingAggregator::default(),
            upload_buf: Vec::new(),
            compression: cfg.compression,
            comp_update: Vec::new(),
            comp_recon: Vec::new(),
            comp_payload: CompressedVec::default(),
            comp_rt: CompressedVec::default(),
            comp_decoded: Vec::new(),
        }
    }

    /// Builds a *lazy-mode* federation for cross-device scale: registered
    /// clients are descriptors in a sharded [`ClientRegistry`], materialized
    /// (dataset + model replica) only when sampled and evicted back to their
    /// durable state when the next round starts. Server memory is
    /// `O(d + active·d)` instead of `O(N·d)`, so a million registered
    /// clients at 1% sampling fit comfortably. Training is bit-identical to
    /// an eager [`Federation::new`] over the same data — client RNG streams
    /// are keyed on `(seed, id)`, never on construction order.
    pub fn lazy(
        source: Arc<dyn ClientDataSource>,
        test: Dataset,
        model: ModelFactory,
        optimizer: OptimizerFactory,
        cfg: &FlConfig,
        seed: u64,
    ) -> Self {
        let n = source.num_clients();
        assert!(n >= 2, "need at least two clients");
        let eval_model = model.build(seed);
        let mut global = Vec::new();
        eval_model.read_params(&mut global);
        // Same arithmetic as `FederatedData::client_weights`, bit for bit,
        // without materializing any dataset.
        let total: usize = (0..n).map(|k| source.num_samples(k)).sum();
        assert!(total > 0, "no training data");
        let weights = (0..n)
            .map(|k| source.num_samples(k) as f32 / total as f32)
            .collect();
        let registry = ClientRegistry::new(source, model, optimizer, cfg, seed, global.clone());
        Federation {
            clients: Vec::new(),
            remote: false,
            registry: Some(Arc::new(registry)),
            n_clients: n,
            weights,
            global,
            transport: Box::new(PerfectTransport::new()),
            test,
            eval_model,
            parallel: cfg.parallel,
            eval_batch: 64,
            tracer: Tracer::disabled(),
            current_round: 0,
            straggler: None,
            lookahead: None,
            prefetch: None,
            hibernate_wave: None,
            background_hibernate: false,
            agg: StreamingAggregator::default(),
            upload_buf: Vec::new(),
            compression: cfg.compression,
            comp_update: Vec::new(),
            comp_recon: Vec::new(),
            comp_payload: CompressedVec::default(),
            comp_rt: CompressedVec::default(),
            comp_decoded: Vec::new(),
        }
    }

    /// Builds a *remote-mode* federation: no local client replicas — the
    /// clients are real processes reachable through `transport`'s
    /// [`RemoteTransport`] half. The server still owns the canonical
    /// `data` (for aggregation weights and the held-out test set), the
    /// global model, and the evaluation; every training/upload step is
    /// asked of the wire instead of computed locally. Algorithms and
    /// [`crate::Trainer::run`] are unchanged.
    pub fn remote(
        data: &FederatedData,
        model: ModelFactory,
        cfg: &FlConfig,
        seed: u64,
        mut transport: Box<dyn Transport>,
    ) -> Self {
        assert!(data.num_clients() >= 2, "need at least two clients");
        assert!(
            transport.as_remote().is_some(),
            "remote federation needs a transport with a RemoteTransport half"
        );
        let eval_model = model.build(seed);
        let mut global = Vec::new();
        eval_model.read_params(&mut global);
        Federation {
            clients: Vec::new(),
            remote: true,
            registry: None,
            n_clients: data.num_clients(),
            weights: data.client_weights(),
            global,
            transport,
            test: data.test.clone(),
            eval_model,
            parallel: cfg.parallel,
            eval_batch: 64,
            tracer: Tracer::disabled(),
            current_round: 0,
            straggler: None,
            lookahead: None,
            prefetch: None,
            hibernate_wave: None,
            background_hibernate: false,
            agg: StreamingAggregator::default(),
            upload_buf: Vec::new(),
            compression: cfg.compression,
            comp_update: Vec::new(),
            comp_recon: Vec::new(),
            comp_payload: CompressedVec::default(),
            comp_rt: CompressedVec::default(),
            comp_decoded: Vec::new(),
        }
    }

    /// Whether this federation drives remote client processes.
    pub fn is_remote(&self) -> bool {
        self.remote
    }

    fn remote_transport(&mut self) -> &mut dyn RemoteTransport {
        self.transport
            .as_remote()
            .expect("remote federation lost its RemoteTransport half")
    }

    /// Ends a remote run: tells every client process to shut down and
    /// closes the links. No-op in simulation mode.
    pub fn shutdown_remote(&mut self) {
        if self.remote {
            self.remote_transport().shutdown();
        }
    }

    /// Swaps the network backend. The default is [`PerfectTransport`]
    /// (lossless, zero-latency); install a
    /// [`crate::comm::FaultyTransport`] to simulate drops, retries, and
    /// deadline dropouts. Must be called before training starts — the byte
    /// ledger starts over with the new transport.
    pub fn set_transport(&mut self, transport: Box<dyn Transport>) {
        self.transport = transport;
    }

    /// Installs a system-heterogeneity model: subsequent uniform-step
    /// training calls draw per-client step counts from it.
    pub fn set_straggler_model(&mut self, model: Option<StragglerModel>) {
        self.straggler = model;
    }

    /// The active upload-compression policy.
    pub fn compression(&self) -> Compression {
        self.compression
    }

    /// Switches the upload-compression policy. With anything but
    /// [`Compression::None`], model uploads cross the transport as
    /// [`MsgKind::CompressedUp`] frames (error-feedback compressed against
    /// the last broadcast global) and δ syncs as
    /// [`MsgKind::CompressedDeltaUp`] frames. In remote mode the clients
    /// must run the same policy (it rides the `Welcome` frame), so flip it
    /// before the first round, never mid-run.
    pub fn set_compression(&mut self, policy: Compression) {
        self.compression = policy;
    }

    /// Marks the start of communication round `round`: resets the
    /// transport's per-round fault state (virtual clocks, deadlines), pins
    /// the round index used by the straggler model, and — in lazy mode —
    /// evicts the previous round's active clients back to the registry.
    /// [`crate::Trainer`] calls this automatically.
    pub fn begin_round(&mut self, round: u64) {
        self.current_round = round;
        self.evict_active();
        self.transport.begin_round(round);
    }

    /// Lazy mode only (no-op otherwise): hibernates every active client
    /// back into the registry shards, dropping the heavyweight simulation
    /// objects. Called automatically by [`Federation::begin_round`];
    /// wave-style drivers (`bench_scale`) call it between waves so peak
    /// memory is bounded by the wave size, not the sampled count.
    ///
    /// With background hibernation on, the persist writes happen on a
    /// spare thread (one wave at a time) so the round loop moves straight
    /// on to the next selection; every materialization path joins the wave
    /// before touching the shards.
    pub fn evict_active(&mut self) {
        if self.registry.is_none() || self.clients.is_empty() {
            return;
        }
        if !self.background_hibernate {
            let reg = self.registry.as_ref().expect("lazy mode");
            for c in self.clients.drain(..) {
                reg.hibernate(c);
            }
            return;
        }
        self.join_hibernate_wave();
        let reg = Arc::clone(self.registry.as_ref().expect("lazy mode"));
        let batch: Vec<Client> = self.clients.drain(..).collect();
        let tracer = self.tracer.clone();
        self.hibernate_wave = Some(std::thread::spawn(move || {
            let mut span = tracer.span(SpanKind::Hibernate);
            span.counter("clients", batch.len() as u64);
            for c in batch {
                reg.hibernate(c);
            }
        }));
    }

    /// Switches [`Federation::evict_active`] between inline and
    /// background hibernation (lazy mode). The pipelined engine turns this
    /// on; wave-style drivers can opt in without installing a selection
    /// stream.
    pub fn set_background_hibernate(&mut self, on: bool) {
        if !on {
            self.join_hibernate_wave();
        }
        self.background_hibernate = on;
    }

    fn join_hibernate_wave(&mut self) {
        if let Some(w) = self.hibernate_wave.take() {
            w.join().expect("hibernate wave panicked");
        }
    }

    /// Joins any in-flight prefetch/hibernate waves, returning prefetched
    /// clients to the registry shards. After this the shard maps hold
    /// every inactive client's persist — call before inspecting
    /// [`Federation::num_persisted`] or tearing a pipelined run down.
    pub fn quiesce(&mut self) {
        self.join_hibernate_wave();
        self.consume_prefetch(&[]);
    }

    /// Whether this federation materializes clients lazily.
    pub fn is_lazy(&self) -> bool {
        self.registry.is_some()
    }

    /// Lazy mode: clients currently hibernated in the registry (previously
    /// sampled, not active). 0 in eager/remote mode.
    pub fn num_persisted(&self) -> usize {
        self.registry.as_ref().map_or(0, |r| r.num_persisted())
    }

    /// Number of currently materialized (active) clients. In eager mode
    /// this is all of them.
    pub fn num_active(&self) -> usize {
        self.clients.len()
    }

    /// Applies a learning-rate schedule step to the whole federation.
    /// Eager mode sets every replica's optimizer; lazy mode records the
    /// rate in the registry (applied whenever a client materializes) and
    /// updates the currently active set; remote mode is a no-op — real
    /// client processes own their optimizer, and the schedule is not part
    /// of the socket protocol.
    pub fn apply_lr_schedule(&mut self, lr: f32) {
        if self.remote {
            return;
        }
        if let Some(reg) = &self.registry {
            reg.set_pending_lr(lr);
        }
        for c in &mut self.clients {
            c.set_lr(lr);
        }
    }

    /// Resolves a client id to its slot in `self.clients`. Eager mode is
    /// the identity; lazy mode binary-searches the id-sorted active set.
    fn local_idx(&self, k: usize) -> usize {
        if self.registry.is_none() {
            k
        } else {
            self.clients
                .binary_search_by_key(&k, |c| c.id())
                .unwrap_or_else(|_| panic!("client {k} is not active this round"))
        }
    }

    /// Lazy mode: materializes every client in `ids` (sorted) that is not
    /// already active, fanning construction across the worker budget, and
    /// merges them into the id-sorted active set. No-op in eager/remote
    /// mode.
    fn ensure_active(&mut self, ids: &[usize]) {
        if self.registry.is_none() {
            return;
        }
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be sorted");
        // Fast path: everything requested is already active. Crucially this
        // leaves in-flight waves untouched — training/eval calls for the
        // *current* wave must not consume a prefetch carrying the *next*
        // one (returning its builds to the shards un-merged would redo
        // every materialization inline at the next broadcast).
        if ids
            .iter()
            .all(|&k| self.clients.binary_search_by_key(&k, |c| c.id()).is_ok())
        {
            return;
        }
        // Any persist still being written must land before a wake can look
        // for it, and the prefetch wave holds the persists of the clients
        // it built — consume it (merge or return) before deciding what is
        // still missing.
        self.join_hibernate_wave();
        self.consume_prefetch(ids);
        let reg = self.registry.as_ref().expect("lazy mode");
        let missing: Vec<usize> = ids
            .iter()
            .copied()
            .filter(|&k| self.clients.binary_search_by_key(&k, |c| c.id()).is_err())
            .collect();
        if missing.is_empty() {
            return;
        }
        let threads = rfl_tensor::thread_budget().min(missing.len());
        let mut built: Vec<Option<Client>> = (0..missing.len()).map(|_| None).collect();
        if threads <= 1 {
            for (slot, &k) in missing.iter().enumerate() {
                built[slot] = Some(reg.materialize(k));
            }
        } else {
            // Index-addressed slots + an atomic work queue: the result is
            // independent of which worker builds which client.
            let slots: Vec<std::sync::Mutex<&mut Option<Client>>> =
                built.iter_mut().map(std::sync::Mutex::new).collect();
            let next = std::sync::atomic::AtomicUsize::new(0);
            let work = |_: usize| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= missing.len() {
                    break;
                }
                let client = reg.materialize(missing[i]);
                **slots[i].lock().expect("slot poisoned") = Some(client);
            };
            std::thread::scope(|s| {
                for t in 1..threads {
                    let work = &work;
                    s.spawn(move || work(t));
                }
                work(0);
            });
        }
        self.clients
            .extend(built.into_iter().map(|c| c.expect("client not built")));
        self.clients.sort_by_key(|c| c.id());
    }

    /// Merges a finished prefetch wave into the active set: clients in
    /// `ids` (and not already active) join the round, everything else —
    /// mispredictions, or ids a custom driver never asked for — goes back
    /// to the registry shards so the persist each build consumed returns
    /// home. Merged clients are re-stamped with the *current* pending
    /// learning rate: a schedule step may have landed after the wave
    /// launched.
    fn consume_prefetch(&mut self, ids: &[usize]) {
        let Some(wave) = self.prefetch.take() else {
            return;
        };
        let built = wave.join().expect("prefetch wave panicked");
        let reg = self.registry.as_ref().expect("prefetch implies lazy mode");
        let lr = reg.pending_lr();
        let mut merged = false;
        for mut c in built {
            if ids.binary_search(&c.id()).is_ok()
                && self
                    .clients
                    .binary_search_by_key(&c.id(), |c| c.id())
                    .is_err()
            {
                if let Some(lr) = lr {
                    c.set_lr(lr);
                }
                self.clients.push(c);
                merged = true;
            } else {
                reg.hibernate(c);
            }
        }
        if merged {
            self.clients.sort_by_key(|c| c.id());
        }
    }

    /// Spawns a prefetch wave materializing `ids` on a spare thread. The
    /// previous hibernate wave (if any) is handed to the worker to join
    /// first: the predicted selection may include clients whose persists
    /// are still being written.
    fn spawn_prefetch(&mut self, ids: Vec<usize>) {
        let reg = Arc::clone(self.registry.as_ref().expect("lazy mode"));
        let hibernating = self.hibernate_wave.take();
        let tracer = self.tracer.clone();
        self.prefetch = Some(std::thread::spawn(move || {
            if let Some(w) = hibernating {
                w.join().expect("hibernate wave panicked");
            }
            let mut span = tracer.span(SpanKind::Prefetch);
            span.counter("clients", ids.len() as u64);
            ids.iter().map(|&k| reg.materialize(k)).collect()
        }));
    }

    /// Predicts round `current + 1`'s selection from the lookahead stream
    /// and prefetches the clients that are not active right now. Active
    /// ids are *never* prefetched — their authoritative state is the live
    /// object, and a second build would fabricate a persist from the
    /// initial global.
    fn launch_prefetch(&mut self) {
        let Some(la) = &self.lookahead else { return };
        if !la.overlap || self.prefetch.is_some() || self.registry.is_none() {
            return;
        }
        let next = self.current_round as usize + 1;
        if next >= la.rounds {
            return;
        }
        let predicted = la.stream.select(next, self.n_clients, la.sample_ratio);
        let ids: Vec<usize> = predicted
            .into_iter()
            .filter(|&k| self.clients.binary_search_by_key(&k, |c| c.id()).is_err())
            .collect();
        if !ids.is_empty() {
            self.spawn_prefetch(ids);
        }
    }

    /// Manually schedules a prefetch wave for `ids` (sorted) — the hook
    /// wave-style drivers use to double-buffer: while wave `i` trains, wave
    /// `i+1` materializes. Already-active ids are skipped; a wave already
    /// in flight wins (one at a time). The wave is consumed by the next
    /// `ensure_active`-routed call (`broadcast_params`, `client_mut`, ...).
    pub fn prefetch_hint(&mut self, ids: &[usize]) {
        if self.registry.is_none() || self.prefetch.is_some() {
            return;
        }
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be sorted");
        let ids: Vec<usize> = ids
            .iter()
            .copied()
            .filter(|&k| self.clients.binary_search_by_key(&k, |c| c.id()).is_err())
            .collect();
        if !ids.is_empty() {
            self.spawn_prefetch(ids);
        }
    }

    /// Turns on the pipelined round engine (lazy mode only). Selections
    /// come from a round-addressable [`SelectionStream`] seeded here
    /// instead of the trainer's threaded RNG, so round `t+1`'s ids are
    /// known while round `t` is still training: [`Federation::broadcast_params`]
    /// launches a prefetch wave materializing them on a spare thread, and
    /// [`Federation::begin_round`] hibernates the previous selection in
    /// the background. `rounds` bounds the lookahead. Training results are
    /// bit-identical to the same stream without overlap (pinned by the
    /// pipeline tests); note the selection *sequence* differs from the
    /// legacy threaded-RNG draw whenever `sample_ratio < 1`.
    pub fn enable_pipelined_rounds(&mut self, seed: u64, sample_ratio: f32, rounds: usize) {
        assert!(
            self.registry.is_some(),
            "pipelined rounds need a lazy-mode federation"
        );
        self.lookahead = Some(Lookahead {
            stream: SelectionStream::new(seed),
            sample_ratio,
            rounds,
            overlap: true,
        });
        self.background_hibernate = true;
    }

    /// The degenerate pipelined engine: same [`SelectionStream`] draws, no
    /// background waves. Exists so determinism tests can A/B the overlap
    /// machinery against a serial run with identical selections.
    pub fn enable_streamed_selection(&mut self, seed: u64, sample_ratio: f32, rounds: usize) {
        assert!(
            self.registry.is_some(),
            "streamed selection needs a lazy-mode federation"
        );
        self.lookahead = Some(Lookahead {
            stream: SelectionStream::new(seed),
            sample_ratio,
            rounds,
            overlap: false,
        });
    }

    /// Draws the current round's selection: from the round-addressable
    /// stream when the pipelined engine is installed (the same ids its
    /// prefetch wave predicted), otherwise from the classic rng-threaded
    /// sampler. `rng` is untouched in streamed mode.
    pub fn sample_selection(&self, ratio: f32, rng: &mut StdRng) -> Vec<usize> {
        match &self.lookahead {
            Some(la) => la
                .stream
                .select(self.current_round as usize, self.n_clients, ratio),
            None => sample_clients(self.n_clients, ratio, rng),
        }
    }

    /// Installs an observability sink; all subsequent channel operations,
    /// local training, and evaluations emit spans into it. Defaults to the
    /// disabled (no-op) tracer.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    pub fn num_clients(&self) -> usize {
        self.n_clients
    }

    pub fn num_params(&self) -> usize {
        self.global.len()
    }

    pub fn feature_dim(&self) -> usize {
        self.eval_model.feature_dim()
    }

    /// The flat-parameter range of the feature extractor `φ` (the paper's
    /// `w̃`); everything after it is the output layer `w̿`.
    pub fn phi_param_range(&self) -> std::ops::Range<usize> {
        self.eval_model.phi_param_range()
    }

    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    pub fn global(&self) -> &[f32] {
        &self.global
    }

    pub fn set_global(&mut self, params: Vec<f32>) {
        assert_eq!(params.len(), self.global.len());
        self.global = params;
    }

    /// The transport's byte/message ledger.
    pub fn comm_stats(&self) -> &CommStats {
        self.transport.stats()
    }

    /// A copy of the ledger (for `since`-style per-phase accounting).
    pub fn comm_snapshot(&self) -> CommStats {
        self.transport.stats().clone()
    }

    /// Message-level fault counters (all zeros under [`PerfectTransport`]).
    pub fn fault_stats(&self) -> FaultStats {
        self.transport.fault_stats()
    }

    /// Sends `payload` to `client` as a `kind` message through the
    /// transport. Algorithm code uses this for its custom traffic (control
    /// variates, δ targets); the plumbing below covers model sync.
    pub fn send(&mut self, kind: MsgKind, client: usize, payload: &[f32]) -> Delivery {
        self.transport.send(kind, client, payload)
    }

    /// Sends `payload` to every client in `clients` (byte cost charged per
    /// receiver, content decoded once).
    pub fn broadcast(
        &mut self,
        kind: MsgKind,
        clients: &[usize],
        payload: &[f32],
    ) -> BroadcastDelivery {
        self.transport.broadcast(kind, clients, payload)
    }

    /// Charges a `kind` message of `wire_bytes` whose payload carries its
    /// own wire format (compressed uploads).
    pub fn send_raw(&mut self, kind: MsgKind, client: usize, wire_bytes: u64) -> LinkOutcome {
        self.transport.send_raw(kind, client, wire_bytes)
    }

    /// Borrows client `k`. Lazy mode: `k` must be active this round
    /// (materialized by a broadcast or [`Federation::client_mut`]).
    pub fn client(&self, k: usize) -> &Client {
        let idx = self.local_idx(k);
        &self.clients[idx]
    }

    /// Mutably borrows client `k`, materializing it first in lazy mode.
    pub fn client_mut(&mut self, k: usize) -> &mut Client {
        if self.registry.is_some() && self.clients.binary_search_by_key(&k, |c| c.id()).is_err() {
            self.ensure_active(&[k]);
        }
        let idx = self.local_idx(k);
        &mut self.clients[idx]
    }

    /// Sends the current global parameters to every selected client as a
    /// metered [`MsgKind::ModelDown`] broadcast, installing them into the
    /// client models whose link delivered. Returns the delivered subset (==
    /// `selected` under the perfect transport) — clients that missed the
    /// download sit the round out.
    pub fn broadcast_params(&mut self, selected: &[usize]) -> Vec<usize> {
        self.ensure_active(selected);
        // Pipelined engine: this round's actives are in place — start
        // materializing the *next* round's predicted selection on a spare
        // thread while this round trains and folds.
        self.launch_prefetch();
        let mut span = self.tracer.span(SpanKind::Broadcast);
        let before = self.comm_snapshot();
        let fbefore = self.fault_stats();
        let bd = self
            .transport
            .broadcast(MsgKind::ModelDown, selected, &self.global);
        let delivered = bd.delivered_clients(selected);
        if !self.remote {
            // Remote clients install the parameters from the frame they
            // received; the local install is the simulation's stand-in.
            for &k in &delivered {
                let idx = self.local_idx(k);
                self.clients[idx].write_params(&bd.data);
            }
        }
        span.counter("bytes", self.comm_stats().since(&before).download_bytes());
        span.counter("clients", selected.len() as u64);
        fault_counters(&mut span, &self.fault_stats().since(&fbefore));
        delivered
    }

    /// Uploads the selected clients' parameters to the server as metered
    /// [`MsgKind::ModelUp`] messages. Returns `(client, params)` for the
    /// uploads that arrived — a dropped upload removes the client from the
    /// round's aggregation.
    ///
    /// This is the *materializing* collection path — `O(delivered·d)`
    /// server memory — kept for algorithms that need every vector at once
    /// (momentum, fairness reweighting) and as the oracle the streaming
    /// path is pinned against. Round loops that only need the weighted
    /// average use [`Federation::collect_aggregate`], which folds each
    /// upload on arrival in O(d).
    pub fn collect_params(&mut self, selected: &[usize]) -> Vec<(usize, Vec<f32>)> {
        let mut out = Vec::with_capacity(selected.len());
        self.fold_uploads(selected, |_, k, params| out.push((k, params.to_vec())));
        out
    }

    /// The streaming upload walk shared by every collection flavor: claims
    /// each selected client's [`MsgKind::ModelUp`] upload in **selection
    /// order** (local mode sends it through the transport; remote mode
    /// claims the frame off the client's session queue) and hands delivered
    /// payloads to `visit(slot, client, params)` one at a time — each
    /// payload is dropped before the next is claimed, so the server never
    /// holds more than one upload unless the visitor keeps it. Returns the
    /// delivered client ids.
    pub fn fold_uploads(
        &mut self,
        selected: &[usize],
        mut visit: impl FnMut(usize, usize, &[f32]),
    ) -> Vec<usize> {
        let mut span = self.tracer.span(SpanKind::Upload);
        let before = self.comm_snapshot();
        let fbefore = self.fault_stats();
        let mut delivered = Vec::with_capacity(selected.len());
        let policy = self.compression;
        if self.remote {
            // The clients already pushed their parameters after training;
            // the server folds each upload as its frame completes, claiming
            // them in selection order so aggregation is deterministic no
            // matter the arrival order on the wire.
            if policy.is_enabled() {
                // Compressed frames decode straight into reused workspaces
                // feeding the fold — still O(d) server memory.
                let mut rt = std::mem::take(&mut self.comp_rt);
                let mut decoded = std::mem::take(&mut self.comp_decoded);
                for (slot, &k) in selected.iter().enumerate() {
                    let link =
                        self.remote_transport()
                            .recv_compressed(MsgKind::CompressedUp, k, &mut rt);
                    if link.delivered && decode_upload_into(policy, &rt, &self.global, &mut decoded)
                    {
                        visit(slot, k, &decoded);
                        delivered.push(k);
                    }
                }
                self.comp_rt = rt;
                self.comp_decoded = decoded;
            } else {
                for (slot, &k) in selected.iter().enumerate() {
                    if let Some(params) = self.remote_transport().recv(MsgKind::ModelUp, k).data {
                        visit(slot, k, &params);
                        delivered.push(k);
                    }
                }
            }
        } else {
            let mut buf = std::mem::take(&mut self.upload_buf);
            if policy.is_enabled() {
                // Simulate exactly what a remote client does: compress the
                // update (params − last broadcast global) with error
                // feedback, send the framed payload through the transport,
                // and decode the received copy against the same global. The
                // residual lives on the client so hibernation keeps the
                // eager ≡ lazy trajectory bit-exact.
                let mut update = std::mem::take(&mut self.comp_update);
                let mut recon = std::mem::take(&mut self.comp_recon);
                let mut payload = std::mem::take(&mut self.comp_payload);
                let mut rt = std::mem::take(&mut self.comp_rt);
                let mut decoded = std::mem::take(&mut self.comp_decoded);
                for (slot, &k) in selected.iter().enumerate() {
                    let idx = self.local_idx(k);
                    self.clients[idx].read_params(&mut buf);
                    ef_compress_update(
                        policy,
                        &buf,
                        &self.global,
                        self.clients[idx].residual_mut(),
                        &mut update,
                        &mut recon,
                        &mut payload,
                    );
                    let link =
                        self.transport
                            .send_compressed(MsgKind::CompressedUp, k, &payload, &mut rt);
                    if link.delivered && decode_upload_into(policy, &rt, &self.global, &mut decoded)
                    {
                        visit(slot, k, &decoded);
                        delivered.push(k);
                    }
                }
                self.comp_update = update;
                self.comp_recon = recon;
                self.comp_payload = payload;
                self.comp_rt = rt;
                self.comp_decoded = decoded;
            } else {
                for (slot, &k) in selected.iter().enumerate() {
                    let idx = self.local_idx(k);
                    self.clients[idx].read_params(&mut buf);
                    if let Some(params) = self.transport.send(MsgKind::ModelUp, k, &buf).data {
                        visit(slot, k, &params);
                        delivered.push(k);
                    }
                }
            }
            self.upload_buf = buf;
        }
        span.counter("bytes", self.comm_stats().since(&before).upload_bytes());
        span.counter("clients", selected.len() as u64);
        fault_counters(&mut span, &self.fault_stats().since(&fbefore));
        delivered
    }

    /// [`Federation::fold_uploads`] with **arrival-order** claiming on the
    /// dense remote path: each sweep resolves every selected client whose
    /// upload frame has already completed in the reactor (non-blocking
    /// probe), so early finishers fold into the aggregation tree while
    /// stragglers are still uploading; only when nothing is ready does the
    /// walk block — on the earliest still-pending client, with the
    /// standard per-claim timeout. `visit` may therefore run in any order
    /// (the reduction tree makes the fold order-free); call sites that
    /// need visit order must use `fold_uploads`. Returned delivered ids
    /// are in selection order either way, and the byte/fault accounting is
    /// identical. Local and compressed paths delegate unchanged.
    pub fn fold_uploads_unordered(
        &mut self,
        selected: &[usize],
        mut visit: impl FnMut(usize, usize, &[f32]),
    ) -> Vec<usize> {
        if !self.remote || self.compression.is_enabled() {
            return self.fold_uploads(selected, visit);
        }
        let mut span = self.tracer.span(SpanKind::Upload);
        let before = self.comm_snapshot();
        let fbefore = self.fault_stats();
        let mut got = vec![false; selected.len()];
        let mut pending: std::collections::VecDeque<usize> = (0..selected.len()).collect();
        while !pending.is_empty() {
            let mut progressed = false;
            for _ in 0..pending.len() {
                let slot = pending.pop_front().expect("pending non-empty");
                let k = selected[slot];
                match self.remote_transport().try_recv(MsgKind::ModelUp, k) {
                    None => pending.push_back(slot),
                    Some(d) => {
                        progressed = true;
                        if let Some(params) = d.data {
                            visit(slot, k, &params);
                            got[slot] = true;
                        }
                    }
                }
            }
            if !progressed {
                if let Some(slot) = pending.pop_front() {
                    let k = selected[slot];
                    if let Some(params) = self.remote_transport().recv(MsgKind::ModelUp, k).data {
                        visit(slot, k, &params);
                        got[slot] = true;
                    }
                }
            }
        }
        let delivered: Vec<usize> = selected
            .iter()
            .enumerate()
            .filter(|&(slot, _)| got[slot])
            .map(|(_, &k)| k)
            .collect();
        span.counter("bytes", self.comm_stats().since(&before).upload_bytes());
        span.counter("clients", selected.len() as u64);
        fault_counters(&mut span, &self.fault_stats().since(&fbefore));
        delivered
    }

    /// Streaming collect-and-average *without* installing the result:
    /// returns the delivered ids and the weighted average over them (with
    /// weights renormalized over the survivors), or `None` when every
    /// upload dropped. Bit-identical to
    /// `weighted_average(params, renormalized_weights(weights, delivered))`
    /// when all uploads arrive.
    pub fn collect_average(&mut self, selected: &[usize]) -> (Vec<usize>, Option<Vec<f32>>) {
        let dim = self.global.len();
        let mut fold_span = self.tracer.span(SpanKind::Fold);
        let mut agg = std::mem::take(&mut self.agg);
        agg.reset_for_selection(dim, &self.weights, selected);
        let delivered =
            self.fold_uploads_unordered(selected, |slot, _, params| agg.push(slot, params));
        // Resolve the slots whose uploads were lost.
        let mut di = 0usize;
        for (slot, &k) in selected.iter().enumerate() {
            if di < delivered.len() && delivered[di] == k {
                di += 1;
            } else {
                agg.mark_dropped(slot);
            }
        }
        let avg = agg.finish();
        self.agg = agg;
        fold_span.counter("clients", delivered.len() as u64);
        fold_span.counter("dims", dim as u64);
        drop(fold_span);
        (delivered, avg)
    }

    /// The standard FedAvg-style round tail in O(d) server memory: claims
    /// the selected clients' uploads in selection order, folds each one
    /// into the [`StreamingAggregator`] on arrival, and installs the
    /// aggregate as the new global (uploads all lost ⇒ the global is left
    /// untouched). Emits the same Upload and Aggregate spans as the
    /// materializing `collect_params` + `weighted_average` pair and charges
    /// identical bytes. Returns the delivered ids.
    pub fn collect_aggregate(&mut self, selected: &[usize]) -> Vec<usize> {
        let (delivered, avg) = self.collect_average(selected);
        let mut span = self.tracer.span(SpanKind::Aggregate);
        span.counter("clients", delivered.len() as u64);
        if let Some(avg) = avg {
            let old = std::mem::replace(&mut self.global, avg);
            self.agg.donate(old);
        }
        delivered
    }

    /// The shared δ synchronization of the regularized algorithms
    /// (rFedAvg Alg. 1 line 10, rFedAvg+ second sync): every client in
    /// `selected` recomputes its δ map with a `probe_batch`-sized probe,
    /// optionally privatizes it with the Gaussian mechanism, and uploads it
    /// as a metered [`MsgKind::DeltaUp`]; delivered maps replace the
    /// server's table rows. Wrapped in a `delta_sync` span.
    pub fn sync_deltas(
        &mut self,
        selected: &[usize],
        table: &mut DeltaTable,
        probe_batch: usize,
        dp: Option<DpConfig>,
        rng: &mut StdRng,
    ) -> usize {
        let mut span = self.tracer.span(SpanKind::DeltaSync);
        let before = self.comm_snapshot();
        let fbefore = self.fault_stats();
        let mut delivered = 0usize;
        if self.remote {
            assert!(
                dp.is_none(),
                "DP δ privatization runs client-side and is not wired over the socket protocol yet"
            );
            let round = self.current_round;
            let policy = self.compression;
            // Fan the probe requests out first so clients compute their δ
            // maps concurrently, then claim the uploads in selection order.
            for &k in selected {
                self.remote_transport().request_delta(k, round, probe_batch);
            }
            if policy.is_enabled() {
                let dim = table.dim();
                let mut rt = std::mem::take(&mut self.comp_rt);
                let mut decoded = std::mem::take(&mut self.comp_decoded);
                for &k in selected {
                    let link = self.remote_transport().recv_compressed(
                        MsgKind::CompressedDeltaUp,
                        k,
                        &mut rt,
                    );
                    if link.delivered && decode_plain_into(policy, &rt, dim, &mut decoded) {
                        table.set(k, decoded.clone());
                        delivered += 1;
                    }
                }
                self.comp_rt = rt;
                self.comp_decoded = decoded;
            } else {
                for &k in selected {
                    if let Some(received) = self.remote_transport().recv(MsgKind::DeltaUp, k).data {
                        table.set(k, received);
                        delivered += 1;
                    }
                }
            }
        } else {
            self.ensure_active(selected);
            let policy = self.compression;
            for &k in selected {
                let idx = self.local_idx(k);
                let mut delta = self.clients[idx].compute_delta(probe_batch);
                if let Some(dp) = dp {
                    privatize_delta(&mut delta, dp, rng);
                }
                if policy.is_enabled() {
                    // δ syncs are stateless (no error feedback): the probe
                    // recomputes the map from scratch each round, so a lossy
                    // sync has nothing to carry over.
                    compress_plain(policy, &delta, &mut self.comp_payload);
                    let link = self.transport.send_compressed(
                        MsgKind::CompressedDeltaUp,
                        k,
                        &self.comp_payload,
                        &mut self.comp_rt,
                    );
                    if link.delivered
                        && decode_plain_into(
                            policy,
                            &self.comp_rt,
                            delta.len(),
                            &mut self.comp_decoded,
                        )
                    {
                        table.set(k, self.comp_decoded.clone());
                        delivered += 1;
                    }
                } else if let Some(received) = self.transport.send(MsgKind::DeltaUp, k, &delta).data
                {
                    table.set(k, received);
                    delivered += 1;
                }
            }
        }
        span.counter(
            "bytes",
            self.comm_stats().since(&before).delta_upload_bytes(),
        );
        span.counter("dims", table.dim() as u64);
        span.counter("clients", selected.len() as u64);
        fault_counters(&mut span, &self.fault_stats().since(&fbefore));
        delivered
    }

    /// Runs local training on the selected clients (in parallel when
    /// configured); `rules[i]` applies to `selected[i]`. When a
    /// [`StragglerModel`] is installed, each client's step count is drawn
    /// from it instead of the uniform `steps`.
    pub fn train_selected(
        &mut self,
        selected: &[usize],
        rules: &[LocalRule],
        steps: usize,
    ) -> Vec<LocalReport> {
        let per_client: Vec<usize> = match self.straggler {
            Some(m) => selected
                .iter()
                .map(|&k| m.steps_for(self.current_round, k, steps))
                .collect(),
            None => vec![steps; selected.len()],
        };
        self.train_selected_steps(selected, rules, &per_client)
    }

    /// Like [`Federation::train_selected`] but with a per-client step
    /// count — models *system heterogeneity* (stragglers doing less local
    /// work), the scenario FedProx's proximal term is designed for.
    pub fn train_selected_steps(
        &mut self,
        selected: &[usize],
        rules: &[LocalRule],
        steps: &[usize],
    ) -> Vec<LocalReport> {
        assert_eq!(selected.len(), rules.len(), "one rule per selected client");
        assert_eq!(selected.len(), steps.len(), "one step count per client");
        if self.remote {
            // The rule each client applies is decided on the client from
            // the frames it received (a delivered δ target ⇒ MMD); the
            // server-side `rules` agree by construction, because both sides
            // key off the same delivery outcome.
            let round = self.current_round;
            for (&k, &e) in selected.iter().zip(steps) {
                self.remote_transport().start_training(k, round, e);
            }
            let tracer = self.tracer.clone();
            let mut reports = Vec::with_capacity(selected.len());
            for &k in selected {
                let mut span = tracer.client_span(SpanKind::LocalTrain, k);
                let report = self
                    .remote_transport()
                    .recv_report(k)
                    .unwrap_or(LocalReport {
                        loss: 0.0,
                        reg_loss: 0.0,
                        steps: 0,
                        examples: 0,
                    });
                span.counter("batches", report.steps as u64);
                span.counter("examples", report.examples as u64);
                reports.push(report);
            }
            return reports;
        }
        self.ensure_active(selected);
        if !self.parallel || selected.len() == 1 {
            return selected
                .iter()
                .zip(rules)
                .zip(steps)
                .map(|((&k, rule), &e)| {
                    let mut span = self.tracer.client_span(SpanKind::LocalTrain, k);
                    let idx = self.local_idx(k);
                    let report = self.clients[idx].train_local(e, rule);
                    span.counter("batches", report.steps as u64);
                    span.counter("examples", report.examples as u64);
                    report
                })
                .collect();
        }
        // Parallel path: take disjoint &mut Client views of the selected
        // subset (selected ids are sorted and unique, so their positions in
        // the id-sorted active vec are strictly increasing too).
        debug_assert!(selected.windows(2).all(|w| w[0] < w[1]));
        let idxs: Vec<usize> = selected.iter().map(|&k| self.local_idx(k)).collect();
        let mut refs: Vec<&mut Client> = Vec::with_capacity(idxs.len());
        {
            let mut rest: &mut [Client] = &mut self.clients;
            let mut offset = 0usize;
            for &k in &idxs {
                let (_, tail) = rest.split_at_mut(k - offset);
                let (head, tail) = tail.split_at_mut(1);
                refs.push(&mut head[0]);
                rest = tail;
                offset = k + 1;
            }
        }
        // Work-queue scheduling: an atomic counter hands out one client at a
        // time, so a straggler (many local steps, big shard) occupies one
        // worker while the rest drain the remaining queue — unlike static
        // chunking, where every client unlucky enough to share the
        // straggler's chunk waits behind it. Reports are written to
        // index-addressed slots, so the result is independent of which
        // worker runs which client. The worker count honors the same budget
        // as the tensor kernels (`RFL_THREADS` / `set_thread_budget`).
        let threads = rfl_tensor::thread_budget().min(refs.len());
        let mut reports = vec![
            LocalReport {
                loss: 0.0,
                reg_loss: 0.0,
                steps: 0,
                examples: 0,
            };
            selected.len()
        ];
        type WorkItem<'a> = (&'a mut Client, &'a LocalRule, usize, &'a mut LocalReport);
        let work: Vec<std::sync::Mutex<Option<WorkItem>>> = refs
            .into_iter()
            .zip(rules)
            .zip(steps)
            .zip(reports.iter_mut())
            .map(|(((c, rule), &e), slot)| std::sync::Mutex::new(Some((c, rule, e, slot))))
            .collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let drain = |tracer: Tracer| loop {
            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if i >= work.len() {
                break;
            }
            let (c, rule, e, slot) = work[i]
                .lock()
                .expect("work slot poisoned")
                .take()
                .expect("work item claimed twice");
            let mut span = tracer.client_span(SpanKind::LocalTrain, c.id());
            let report = c.train_local(e, rule);
            span.counter("batches", report.steps as u64);
            span.counter("examples", report.examples as u64);
            *slot = report;
        };
        std::thread::scope(|s| {
            for _ in 1..threads {
                let tracer = self.tracer.clone();
                let drain = &drain;
                s.spawn(move || drain(tracer));
            }
            // The calling thread is worker 0.
            drain(self.tracer.clone());
        });
        reports
    }

    /// Weighted average of parameter vectors (`Σ w_i θ_i`), written into a
    /// caller-provided buffer — the allocation-free form the materializing
    /// call sites use so the average doesn't get built twice.
    pub fn weighted_average_into(out: &mut Vec<f32>, params: &[Vec<f32>], weights: &[f32]) {
        assert_eq!(params.len(), weights.len());
        assert!(!params.is_empty());
        let n = params[0].len();
        out.clear();
        out.resize(n, 0.0);
        for (p, &w) in params.iter().zip(weights) {
            assert_eq!(p.len(), n);
            rfl_tensor::axpy_slices(out, w, p);
        }
    }

    /// Weighted average of parameter vectors (`Σ w_i θ_i`). This is the
    /// materialize-everything oracle the [`StreamingAggregator`] is pinned
    /// against (see the aggregator proptests).
    pub fn weighted_average(params: &[Vec<f32>], weights: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        Self::weighted_average_into(&mut out, params, weights);
        out
    }

    /// Evaluates the global model on the held-out test set.
    pub fn evaluate_global(&mut self) -> EvalResult {
        let mut span = self.tracer.span(SpanKind::Eval);
        self.eval_model.write_params(&self.global);
        let result = evaluate(self.eval_model.as_mut(), &self.test, self.eval_batch);
        span.counter("examples", result.n as u64);
        result
    }

    /// Evaluates the global model on each client's local data
    /// (fairness evaluation, Fig. 11).
    pub fn evaluate_per_client(&mut self) -> Vec<EvalResult> {
        self.eval_model.write_params(&self.global);
        let model = self.eval_model.as_mut();
        let batch = self.eval_batch;
        if let Some(reg) = &self.registry {
            // Lazy mode: evaluation only needs each client's *dataset*, so
            // regenerate shards transiently from the source instead of
            // materializing whole clients.
            let source = Arc::clone(reg.source());
            return (0..source.num_clients())
                .map(|k| evaluate(model, &source.dataset(k), batch))
                .collect();
        }
        self.clients
            .iter()
            .map(|c| evaluate(model, c.data(), batch))
            .collect()
    }

    /// Mean data loss of the *global* model over selected clients' local
    /// data (used by q-FedAvg's fair aggregation).
    pub fn local_losses_at_global(&mut self, selected: &[usize]) -> Vec<f32> {
        // Clients already hold the broadcast global parameters.
        self.ensure_active(selected);
        selected
            .iter()
            .map(|&k| {
                let idx = self.local_idx(k);
                self.clients[idx].evaluate_local(self.eval_batch)
            })
            .map(|r| r.loss)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rfl_data::synth::gaussian::GaussianMixtureSpec;

    fn small_fed(parallel: bool, seed: u64) -> Federation {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = GaussianMixtureSpec::default_spec();
        let pool = spec.generate(80, None, &mut rng);
        let parts = rfl_data::partition::iid(80, 4, &mut rng);
        let test = spec.generate(40, None, &mut rng);
        let data = FederatedData::from_partition(&pool, &parts, test);
        let mut cfg = FlConfig::cross_silo();
        cfg.parallel = parallel;
        cfg.batch_size = 10;
        Federation::new(
            &data,
            ModelFactory::logistic(10, 4, 0.0),
            OptimizerFactory::sgd(0.1),
            &cfg,
            seed,
        )
    }

    #[test]
    fn all_clients_start_at_global() {
        let fed = small_fed(false, 0);
        let mut buf = Vec::new();
        for k in 0..fed.num_clients() {
            fed.client(k).read_params(&mut buf);
            assert_eq!(buf, fed.global());
        }
    }

    #[test]
    fn weighted_average_of_identical_is_identity() {
        let p = vec![vec![1.0, 2.0], vec![1.0, 2.0]];
        let avg = Federation::weighted_average(&p, &[0.3, 0.7]);
        assert_eq!(avg, vec![1.0, 2.0]);
    }

    #[test]
    fn weighted_average_weights_matter() {
        let p = vec![vec![0.0], vec![10.0]];
        assert_eq!(Federation::weighted_average(&p, &[0.9, 0.1]), vec![1.0]);
    }

    #[test]
    fn broadcast_meters_per_receiver() {
        let mut fed = small_fed(false, 1);
        let n_params = fed.num_params();
        let delivered = fed.broadcast_params(&[0, 2]);
        assert_eq!(delivered, vec![0, 2], "perfect transport delivers all");
        assert_eq!(
            fed.comm_stats().download_bytes(),
            2 * (4 + 4 * n_params as u64)
        );
    }

    #[test]
    fn parallel_equals_serial() {
        let mut fed_s = small_fed(false, 2);
        let mut fed_p = small_fed(true, 2);
        let selected = vec![0, 1, 2, 3];
        let rules = vec![LocalRule::Plain; 4];
        fed_s.broadcast_params(&selected);
        fed_p.broadcast_params(&selected);
        let rs = fed_s.train_selected(&selected, &rules, 5);
        let rp = fed_p.train_selected(&selected, &rules, 5);
        for (a, b) in rs.iter().zip(&rp) {
            assert_eq!(a.loss, b.loss);
        }
        let ps = fed_s.collect_params(&selected);
        let pp = fed_p.collect_params(&selected);
        assert_eq!(ps, pp);
    }

    #[test]
    fn parallel_handles_sparse_selection() {
        let mut fed = small_fed(true, 3);
        let selected = vec![1, 3];
        let rules = vec![LocalRule::Plain; 2];
        let reports = fed.train_selected(&selected, &rules, 3);
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.steps == 3));
    }

    #[test]
    fn evaluate_per_client_returns_one_result_each() {
        let mut fed = small_fed(false, 4);
        let results = fed.evaluate_per_client();
        assert_eq!(results.len(), 4);
        assert!(results.iter().all(|r| r.n > 0));
    }

    #[test]
    fn train_changes_params_and_reduces_global_loss_after_aggregate() {
        let mut fed = small_fed(false, 5);
        let before = fed.evaluate_global().loss;
        for _ in 0..10 {
            let selected: Vec<usize> = (0..4).collect();
            fed.broadcast_params(&selected);
            let rules = vec![LocalRule::Plain; 4];
            fed.train_selected(&selected, &rules, 5);
            let params: Vec<Vec<f32>> = fed
                .collect_params(&selected)
                .into_iter()
                .map(|(_, p)| p)
                .collect();
            let w = crate::sampling::renormalized_weights(fed.weights(), &selected);
            let avg = Federation::weighted_average(&params, &w);
            fed.set_global(avg);
        }
        let after = fed.evaluate_global().loss;
        assert!(after < before, "{before} → {after}");
    }

    #[test]
    fn tracing_does_not_change_results() {
        // The no-op sink is not enough: even an *enabled* tracer must be
        // invisible to training (it only reads the channel meters and the
        // clock, never the RNG streams).
        let run = |trace: bool| {
            let mut fed = small_fed(true, 7);
            let tracer = if trace {
                Tracer::enabled()
            } else {
                Tracer::disabled()
            };
            fed.set_tracer(tracer.clone());
            let selected = vec![0, 1, 2, 3];
            for _ in 0..3 {
                fed.broadcast_params(&selected);
                fed.train_selected(&selected, &vec![LocalRule::Plain; 4], 5);
                let params: Vec<Vec<f32>> = fed
                    .collect_params(&selected)
                    .into_iter()
                    .map(|(_, p)| p)
                    .collect();
                let w = crate::sampling::renormalized_weights(fed.weights(), &selected);
                fed.set_global(Federation::weighted_average(&params, &w));
            }
            (fed.global().to_vec(), tracer.records().len())
        };
        let (off, n_off) = run(false);
        let (on, n_on) = run(true);
        assert_eq!(off, on, "tracing changed training results");
        assert_eq!(n_off, 0);
        assert!(n_on > 0);
    }

    #[test]
    fn span_bytes_match_comm_stats() {
        let mut fed = small_fed(false, 8);
        let tracer = Tracer::enabled();
        fed.set_tracer(tracer.clone());
        fed.broadcast_params(&[0, 1, 2]);
        let params = fed.collect_params(&[0, 1, 2]);
        assert_eq!(params.len(), 3);
        let recs = tracer.records();
        let sum = |kind: &str| -> u64 {
            recs.iter()
                .filter(|r| r.kind == kind)
                .filter_map(|r| r.counter("bytes"))
                .sum()
        };
        assert_eq!(sum("broadcast"), fed.comm_stats().download_bytes());
        assert_eq!(sum("upload"), fed.comm_stats().upload_bytes());
    }

    #[test]
    fn rng_streams_do_not_collide() {
        // Two distinct clients with identical data must still take different
        // batch sequences.
        let mut rng = StdRng::seed_from_u64(9);
        let spec = GaussianMixtureSpec::default_spec();
        let pool = spec.generate(40, None, &mut rng);
        let parts = [(0..40).collect::<Vec<_>>(), (0..40).collect::<Vec<_>>()];
        let test = spec.generate(8, None, &mut rng);
        let data = FederatedData {
            clients: parts.iter().map(|p| pool.select(p)).collect(),
            test,
        };
        let cfg = FlConfig {
            parallel: false,
            batch_size: 4,
            ..FlConfig::cross_silo()
        };
        let mut fed = Federation::new(
            &data,
            ModelFactory::logistic(10, 4, 0.0),
            OptimizerFactory::sgd(0.5),
            &cfg,
            9,
        );
        fed.broadcast_params(&[0, 1]);
        fed.train_selected(&[0, 1], &[LocalRule::Plain, LocalRule::Plain], 1);
        let params = fed.collect_params(&[0, 1]);
        assert_ne!(
            params[0].1, params[1].1,
            "clients sampled identical batches"
        );
        let _ = rng.gen::<f32>();
    }
}

#[cfg(test)]
mod straggler_tests {
    use super::*;
    use crate::rules::LocalRule;
    use rfl_data::synth::gaussian::GaussianMixtureSpec;

    #[test]
    fn per_client_steps_are_respected() {
        let mut rng = StdRng::seed_from_u64(30);
        let spec = GaussianMixtureSpec::default_spec();
        let pool = spec.generate(80, None, &mut rng);
        let parts = rfl_data::partition::iid(80, 4, &mut rng);
        let test = spec.generate(20, None, &mut rng);
        let data = rfl_data::FederatedData::from_partition(&pool, &parts, test);
        let cfg = FlConfig {
            parallel: false,
            batch_size: 10,
            ..FlConfig::cross_silo()
        };
        let mut fed = Federation::new(
            &data,
            ModelFactory::logistic(10, 4, 0.0),
            OptimizerFactory::sgd(0.1),
            &cfg,
            30,
        );
        let selected = vec![0, 1, 2, 3];
        fed.broadcast_params(&selected);
        let rules = vec![LocalRule::Plain; 4];
        let reports = fed.train_selected_steps(&selected, &rules, &[1, 3, 5, 7]);
        let got: Vec<usize> = reports.iter().map(|r| r.steps).collect();
        assert_eq!(got, vec![1, 3, 5, 7]);
    }

    #[test]
    fn parallel_straggler_training_matches_serial() {
        let make = |parallel: bool| {
            let mut rng = StdRng::seed_from_u64(31);
            let spec = GaussianMixtureSpec::default_spec();
            let pool = spec.generate(80, None, &mut rng);
            let parts = rfl_data::partition::iid(80, 4, &mut rng);
            let test = spec.generate(20, None, &mut rng);
            let data = rfl_data::FederatedData::from_partition(&pool, &parts, test);
            let cfg = FlConfig {
                parallel,
                batch_size: 10,
                ..FlConfig::cross_silo()
            };
            Federation::new(
                &data,
                ModelFactory::logistic(10, 4, 0.0),
                OptimizerFactory::sgd(0.1),
                &cfg,
                31,
            )
        };
        let selected = vec![0, 1, 2, 3];
        let rules = vec![LocalRule::Plain; 4];
        let steps = [2usize, 4, 1, 6];
        let mut fed_s = make(false);
        let mut fed_p = make(true);
        fed_s.broadcast_params(&selected);
        fed_p.broadcast_params(&selected);
        fed_s.train_selected_steps(&selected, &rules, &steps);
        fed_p.train_selected_steps(&selected, &rules, &steps);
        assert_eq!(
            fed_s.collect_params(&selected),
            fed_p.collect_params(&selected)
        );
    }

    #[test]
    fn straggler_model_draws_bounded_deterministic_steps() {
        let m = StragglerModel::new(7, 2);
        for round in 0..5u64 {
            for k in 0..20 {
                let s = m.steps_for(round, k, 10);
                assert!((2..=10).contains(&s));
                assert_eq!(s, m.steps_for(round, k, 10), "stateless draw");
            }
        }
        // Different rounds reshuffle who straggles.
        let r0: Vec<usize> = (0..20).map(|k| m.steps_for(0, k, 10)).collect();
        let r1: Vec<usize> = (0..20).map(|k| m.steps_for(1, k, 10)).collect();
        assert_ne!(r0, r1);
        // A budget at or below the floor is returned untouched.
        assert_eq!(m.steps_for(0, 0, 2), 2);
        assert_eq!(m.steps_for(0, 0, 1), 1);
    }

    #[test]
    fn probe_batch_defaults_to_floored_batch_size() {
        let mut cfg = FlConfig::cross_silo();
        cfg.batch_size = 10;
        assert_eq!(cfg.probe_batch(), 32);
        cfg.batch_size = 64;
        assert_eq!(cfg.probe_batch(), 64);
        cfg.delta_probe_batch = Some(16);
        assert_eq!(cfg.probe_batch(), 16);
    }
}

#[cfg(test)]
mod transport_tests {
    use super::*;
    use crate::comm::{FaultConfig, FaultyTransport};
    use crate::rules::LocalRule;
    use rfl_data::synth::gaussian::GaussianMixtureSpec;

    fn fed_with(transport: Option<Box<dyn Transport>>, seed: u64) -> Federation {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = GaussianMixtureSpec::default_spec();
        let pool = spec.generate(80, None, &mut rng);
        let parts = rfl_data::partition::iid(80, 4, &mut rng);
        let test = spec.generate(20, None, &mut rng);
        let data = FederatedData::from_partition(&pool, &parts, test);
        let cfg = FlConfig {
            parallel: false,
            batch_size: 10,
            ..FlConfig::cross_silo()
        };
        let mut fed = Federation::new(
            &data,
            ModelFactory::logistic(10, 4, 0.0),
            OptimizerFactory::sgd(0.1),
            &cfg,
            seed,
        );
        if let Some(t) = transport {
            fed.set_transport(t);
        }
        fed
    }

    #[test]
    fn dropped_model_download_skips_param_install() {
        // Certain loss: nothing is installed and nobody participates.
        let t = FaultyTransport::new(FaultConfig::lossy(1, 1.0, 0));
        let mut fed = fed_with(Some(Box::new(t)), 40);
        let mut before = Vec::new();
        fed.client(0).read_params(&mut before);
        fed.client_mut(0).write_params(&vec![0.5; before.len()]);
        let delivered = fed.broadcast_params(&[0, 1, 2, 3]);
        assert!(delivered.is_empty());
        let mut after = Vec::new();
        fed.client(0).read_params(&mut after);
        assert_eq!(after, vec![0.5; after.len()], "params must stay untouched");
        assert_eq!(fed.fault_stats().dropped, 4);
        // Bytes were still charged for the failed attempts.
        assert!(fed.comm_stats().download_bytes() > 0);
    }

    #[test]
    fn dropped_uploads_are_excluded_from_collection() {
        let t = FaultyTransport::new(FaultConfig::lossy(3, 0.5, 0));
        let mut fed = fed_with(Some(Box::new(t)), 41);
        let all = vec![0, 1, 2, 3];
        let active = fed.broadcast_params(&all);
        fed.train_selected(&active, &vec![LocalRule::Plain; active.len()], 1);
        let before = fed.fault_stats();
        let uploads = fed.collect_params(&active);
        let dropped_uploads = fed.fault_stats().since(&before).dropped as usize;
        assert_eq!(uploads.len() + dropped_uploads, active.len());
        for (k, p) in &uploads {
            assert!(active.contains(k));
            assert_eq!(p.len(), fed.num_params());
        }
    }

    #[test]
    fn lossless_faulty_matches_perfect_plumbing() {
        let mut perfect = fed_with(None, 42);
        let mut faulty = fed_with(
            Some(Box::new(FaultyTransport::new(FaultConfig::lossless(9)))),
            42,
        );
        for round in 0..3 {
            for fed in [&mut perfect, &mut faulty] {
                fed.begin_round(round);
                let selected = vec![0, 1, 2, 3];
                let active = fed.broadcast_params(&selected);
                assert_eq!(active, selected);
                fed.train_selected(&active, &vec![LocalRule::Plain; 4], 2);
                let uploads = fed.collect_params(&active);
                let (ids, params): (Vec<usize>, Vec<Vec<f32>>) = uploads.into_iter().unzip();
                let w = crate::sampling::renormalized_weights(fed.weights(), &ids);
                let avg = Federation::weighted_average(&params, &w);
                fed.set_global(avg);
            }
        }
        assert_eq!(
            perfect.global(),
            faulty.global(),
            "bit-identical trajectories"
        );
        let (p, f) = (perfect.comm_stats(), faulty.comm_stats());
        assert_eq!(p.total_bytes(), f.total_bytes());
        assert_eq!(p.messages(), f.messages());
        assert_eq!(faulty.fault_stats(), crate::comm::FaultStats::default());
    }

    #[test]
    fn straggler_model_reduces_steps_through_train_selected() {
        let mut fed = fed_with(None, 43);
        fed.set_straggler_model(Some(StragglerModel::new(5, 1)));
        fed.begin_round(0);
        let selected = vec![0, 1, 2, 3];
        fed.broadcast_params(&selected);
        let reports = fed.train_selected(&selected, &vec![LocalRule::Plain; 4], 50);
        let steps: Vec<usize> = reports.iter().map(|r| r.steps).collect();
        assert!(steps.iter().all(|&s| (1..=50).contains(&s)));
        assert!(steps.iter().any(|&s| s < 50), "someone should straggle");
        // The draw is pinned to the round: same round, same steps.
        let again = fed.train_selected(&selected, &vec![LocalRule::Plain; 4], 50);
        assert_eq!(steps, again.iter().map(|r| r.steps).collect::<Vec<_>>());
    }
}
