//! The federation: clients, global parameters, metered channel, and the
//! shared round plumbing used by every algorithm.

use crate::client::{Client, LocalReport};
use crate::comm::{Channel, Direction};
use crate::eval::{evaluate, EvalResult};
use crate::rules::LocalRule;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfl_data::{Dataset, FederatedData};
use rfl_nn::{
    Adam, CnnClassifier, CnnConfig, LinearNet, LogisticRegression, LstmClassifier, LstmConfig,
    MlpClassifier, Model, Optimizer, RmsProp, Sgd,
};
use rfl_trace::{SpanKind, Tracer};

/// Run-level hyper-parameters shared by all algorithms.
#[derive(Clone, Copy, Debug)]
pub struct FlConfig {
    /// Communication rounds `C`.
    pub rounds: usize,
    /// Local steps per round `E`.
    pub local_steps: usize,
    /// Local mini-batch size `B`.
    pub batch_size: usize,
    /// Client sample ratio `SR` (1.0 = full participation).
    pub sample_ratio: f32,
    /// Evaluate the global model on the test set every `eval_every` rounds.
    pub eval_every: usize,
    /// Run selected clients' local training on worker threads.
    pub parallel: bool,
    /// Global-norm gradient clip applied to the assembled local gradient
    /// (data gradient + algorithm corrections). Standard stabilization for
    /// control-variate methods; `None` disables. Rarely binds at the paper's
    /// learning rates, but prevents SCAFFOLD's runaway feedback loop on
    /// high-variance synthetic data.
    pub clip_grad_norm: Option<f32>,
    /// Server RNG seed (client RNGs derive from the federation seed).
    pub seed: u64,
}

impl FlConfig {
    /// The paper's cross-silo setting (N = 20, E = 5, SR = 1.0).
    pub fn cross_silo() -> Self {
        FlConfig {
            rounds: 60,
            local_steps: 5,
            batch_size: 32,
            sample_ratio: 1.0,
            eval_every: 1,
            parallel: true,
            clip_grad_norm: Some(10.0),
            seed: 0,
        }
    }

    /// The paper's cross-device setting (N = 500, E = 10, SR = 0.2).
    pub fn cross_device() -> Self {
        FlConfig {
            rounds: 60,
            local_steps: 10,
            batch_size: 32,
            sample_ratio: 0.2,
            eval_every: 1,
            parallel: true,
            clip_grad_norm: Some(10.0),
            seed: 0,
        }
    }
}

/// Model constructors — pure data so federations can be rebuilt per seed.
#[derive(Clone, Copy, Debug)]
pub enum ModelFactory {
    Cnn(CnnConfig),
    Lstm(LstmConfig),
    Logistic {
        dim: usize,
        classes: usize,
        l2: f32,
    },
    LinearNet {
        dim: usize,
        feature_dim: usize,
        classes: usize,
        l2: f32,
    },
    Mlp {
        dim: usize,
        hidden1: usize,
        hidden2: usize,
        classes: usize,
    },
}

impl ModelFactory {
    pub fn cnn(cfg: CnnConfig) -> Self {
        ModelFactory::Cnn(cfg)
    }

    pub fn lstm(cfg: LstmConfig) -> Self {
        ModelFactory::Lstm(cfg)
    }

    pub fn logistic(dim: usize, classes: usize, l2: f32) -> Self {
        ModelFactory::Logistic { dim, classes, l2 }
    }

    pub fn linear_net(dim: usize, feature_dim: usize, classes: usize, l2: f32) -> Self {
        ModelFactory::LinearNet {
            dim,
            feature_dim,
            classes,
            l2,
        }
    }

    /// Two-hidden-layer MLP over dense inputs (feature hook at `hidden2`).
    pub fn mlp(dim: usize, hidden1: usize, hidden2: usize, classes: usize) -> Self {
        ModelFactory::Mlp {
            dim,
            hidden1,
            hidden2,
            classes,
        }
    }

    /// Builds a model with weights derived from `seed`.
    pub fn build(&self, seed: u64) -> Box<dyn Model> {
        let mut rng = StdRng::seed_from_u64(seed);
        match *self {
            ModelFactory::Cnn(cfg) => Box::new(CnnClassifier::new(cfg, &mut rng)),
            ModelFactory::Lstm(cfg) => Box::new(LstmClassifier::new(cfg, &mut rng)),
            ModelFactory::Logistic { dim, classes, l2 } => {
                Box::new(LogisticRegression::new(dim, classes, l2, &mut rng))
            }
            ModelFactory::LinearNet {
                dim,
                feature_dim,
                classes,
                l2,
            } => Box::new(LinearNet::new(dim, feature_dim, classes, l2, &mut rng)),
            ModelFactory::Mlp {
                dim,
                hidden1,
                hidden2,
                classes,
            } => Box::new(MlpClassifier::new(
                dim,
                &[hidden1, hidden2],
                classes,
                &mut rng,
            )),
        }
    }
}

/// Local-optimizer constructors.
#[derive(Clone, Copy, Debug)]
pub enum OptimizerFactory {
    Sgd { lr: f32 },
    SgdMomentum { lr: f32, momentum: f32 },
    RmsProp { lr: f32 },
    Adam { lr: f32 },
}

impl OptimizerFactory {
    pub fn sgd(lr: f32) -> Self {
        OptimizerFactory::Sgd { lr }
    }

    pub fn sgd_momentum(lr: f32, momentum: f32) -> Self {
        OptimizerFactory::SgdMomentum { lr, momentum }
    }

    pub fn rmsprop(lr: f32) -> Self {
        OptimizerFactory::RmsProp { lr }
    }

    pub fn adam(lr: f32) -> Self {
        OptimizerFactory::Adam { lr }
    }

    pub fn build(&self) -> Box<dyn Optimizer> {
        match *self {
            OptimizerFactory::Sgd { lr } => Box::new(Sgd::new(lr)),
            OptimizerFactory::SgdMomentum { lr, momentum } => {
                Box::new(Sgd::with_momentum(lr, momentum))
            }
            OptimizerFactory::RmsProp { lr } => Box::new(RmsProp::new(lr)),
            OptimizerFactory::Adam { lr } => Box::new(Adam::new(lr)),
        }
    }
}

/// The simulated federated system.
pub struct Federation {
    clients: Vec<Client>,
    weights: Vec<f32>,
    global: Vec<f32>,
    channel: Channel,
    test: Dataset,
    eval_model: Box<dyn Model>,
    parallel: bool,
    eval_batch: usize,
    tracer: Tracer,
}

impl Federation {
    /// Builds the federation: every client starts from the same global
    /// initialization (derived from `seed`), with its own optimizer state
    /// and RNG stream.
    pub fn new(
        data: &FederatedData,
        model: ModelFactory,
        optimizer: OptimizerFactory,
        cfg: &FlConfig,
        seed: u64,
    ) -> Self {
        assert!(data.num_clients() >= 2, "need at least two clients");
        let eval_model = model.build(seed);
        let mut global = Vec::new();
        eval_model.read_params(&mut global);
        let clients = data
            .clients
            .iter()
            .enumerate()
            .map(|(k, d)| {
                let mut m = model.build(seed);
                m.write_params(&global);
                let mut c = Client::new(k, m, d.clone(), optimizer.build(), cfg.batch_size, seed);
                c.set_clip_grad_norm(cfg.clip_grad_norm);
                c
            })
            .collect();
        Federation {
            clients,
            weights: data.client_weights(),
            global,
            channel: Channel::new(),
            test: data.test.clone(),
            eval_model,
            parallel: cfg.parallel,
            eval_batch: 64,
            tracer: Tracer::disabled(),
        }
    }

    /// Installs an observability sink; all subsequent channel operations,
    /// local training, and evaluations emit spans into it. Defaults to the
    /// disabled (no-op) tracer.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    pub fn num_params(&self) -> usize {
        self.global.len()
    }

    pub fn feature_dim(&self) -> usize {
        self.eval_model.feature_dim()
    }

    /// The flat-parameter range of the feature extractor `φ` (the paper's
    /// `w̃`); everything after it is the output layer `w̿`.
    pub fn phi_param_range(&self) -> std::ops::Range<usize> {
        self.eval_model.phi_param_range()
    }

    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    pub fn global(&self) -> &[f32] {
        &self.global
    }

    pub fn set_global(&mut self, params: Vec<f32>) {
        assert_eq!(params.len(), self.global.len());
        self.global = params;
    }

    pub fn channel(&self) -> &Channel {
        &self.channel
    }

    pub fn channel_mut(&mut self) -> &mut Channel {
        &mut self.channel
    }

    pub fn client(&self, k: usize) -> &Client {
        &self.clients[k]
    }

    pub fn client_mut(&mut self, k: usize) -> &mut Client {
        &mut self.clients[k]
    }

    /// Sends the current global parameters to every selected client
    /// (metered broadcast), installing them into the client models.
    pub fn broadcast_params(&mut self, selected: &[usize]) {
        let mut span = self.tracer.span(SpanKind::Broadcast);
        let before = self.channel.snapshot();
        let received = self.channel.broadcast(selected.len(), &self.global);
        for &k in selected {
            self.clients[k].write_params(&received);
        }
        span.counter(
            "bytes",
            self.channel.stats().since(&before).download_bytes(),
        );
        span.counter("clients", selected.len() as u64);
    }

    /// Uploads the selected clients' parameters to the server (metered).
    pub fn collect_params(&mut self, selected: &[usize]) -> Vec<Vec<f32>> {
        let mut span = self.tracer.span(SpanKind::Upload);
        let before = self.channel.snapshot();
        let mut out = Vec::with_capacity(selected.len());
        let mut buf = Vec::new();
        for &k in selected {
            self.clients[k].read_params(&mut buf);
            out.push(self.channel.transfer(Direction::Upload, &buf));
        }
        span.counter("bytes", self.channel.stats().since(&before).upload_bytes());
        span.counter("clients", selected.len() as u64);
        out
    }

    /// Runs local training on the selected clients (in parallel when
    /// configured); `rules[i]` applies to `selected[i]`.
    pub fn train_selected(
        &mut self,
        selected: &[usize],
        rules: &[LocalRule],
        steps: usize,
    ) -> Vec<LocalReport> {
        let per_client = vec![steps; selected.len()];
        self.train_selected_steps(selected, rules, &per_client)
    }

    /// Like [`Federation::train_selected`] but with a per-client step
    /// count — models *system heterogeneity* (stragglers doing less local
    /// work), the scenario FedProx's proximal term is designed for.
    pub fn train_selected_steps(
        &mut self,
        selected: &[usize],
        rules: &[LocalRule],
        steps: &[usize],
    ) -> Vec<LocalReport> {
        assert_eq!(selected.len(), rules.len(), "one rule per selected client");
        assert_eq!(selected.len(), steps.len(), "one step count per client");
        if !self.parallel || selected.len() == 1 {
            return selected
                .iter()
                .zip(rules)
                .zip(steps)
                .map(|((&k, rule), &e)| {
                    let mut span = self.tracer.client_span(SpanKind::LocalTrain, k);
                    let report = self.clients[k].train_local(e, rule);
                    span.counter("batches", report.steps as u64);
                    span.counter("examples", report.examples as u64);
                    report
                })
                .collect();
        }
        // Parallel path: take disjoint &mut Client views of the selected
        // subset (selected indices are sorted and unique).
        debug_assert!(selected.windows(2).all(|w| w[0] < w[1]));
        let mut refs: Vec<&mut Client> = Vec::with_capacity(selected.len());
        {
            let mut rest: &mut [Client] = &mut self.clients;
            let mut offset = 0usize;
            for &k in selected {
                let (_, tail) = rest.split_at_mut(k - offset);
                let (head, tail) = tail.split_at_mut(1);
                refs.push(&mut head[0]);
                rest = tail;
                offset = k + 1;
            }
        }
        // Work-queue scheduling: an atomic counter hands out one client at a
        // time, so a straggler (many local steps, big shard) occupies one
        // worker while the rest drain the remaining queue — unlike static
        // chunking, where every client unlucky enough to share the
        // straggler's chunk waits behind it. Reports are written to
        // index-addressed slots, so the result is independent of which
        // worker runs which client. The worker count honors the same budget
        // as the tensor kernels (`RFL_THREADS` / `set_thread_budget`).
        let threads = rfl_tensor::thread_budget().min(refs.len());
        let mut reports = vec![
            LocalReport {
                loss: 0.0,
                reg_loss: 0.0,
                steps: 0,
                examples: 0,
            };
            selected.len()
        ];
        type WorkItem<'a> = (&'a mut Client, &'a LocalRule, usize, &'a mut LocalReport);
        let work: Vec<std::sync::Mutex<Option<WorkItem>>> = refs
            .into_iter()
            .zip(rules)
            .zip(steps)
            .zip(reports.iter_mut())
            .map(|(((c, rule), &e), slot)| std::sync::Mutex::new(Some((c, rule, e, slot))))
            .collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let drain = |tracer: Tracer| loop {
            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if i >= work.len() {
                break;
            }
            let (c, rule, e, slot) = work[i]
                .lock()
                .expect("work slot poisoned")
                .take()
                .expect("work item claimed twice");
            let mut span = tracer.client_span(SpanKind::LocalTrain, c.id());
            let report = c.train_local(e, rule);
            span.counter("batches", report.steps as u64);
            span.counter("examples", report.examples as u64);
            *slot = report;
        };
        std::thread::scope(|s| {
            for _ in 1..threads {
                let tracer = self.tracer.clone();
                let drain = &drain;
                s.spawn(move || drain(tracer));
            }
            // The calling thread is worker 0.
            drain(self.tracer.clone());
        });
        reports
    }

    /// Weighted average of parameter vectors (`Σ w_i θ_i`).
    pub fn weighted_average(params: &[Vec<f32>], weights: &[f32]) -> Vec<f32> {
        assert_eq!(params.len(), weights.len());
        assert!(!params.is_empty());
        let n = params[0].len();
        let mut out = vec![0.0f32; n];
        for (p, &w) in params.iter().zip(weights) {
            assert_eq!(p.len(), n);
            rfl_tensor::axpy_slices(&mut out, w, p);
        }
        out
    }

    /// Evaluates the global model on the held-out test set.
    pub fn evaluate_global(&mut self) -> EvalResult {
        let mut span = self.tracer.span(SpanKind::Eval);
        self.eval_model.write_params(&self.global);
        let result = evaluate(self.eval_model.as_mut(), &self.test, self.eval_batch);
        span.counter("examples", result.n as u64);
        result
    }

    /// Evaluates the global model on each client's local data
    /// (fairness evaluation, Fig. 11).
    pub fn evaluate_per_client(&mut self) -> Vec<EvalResult> {
        self.eval_model.write_params(&self.global);
        let model = self.eval_model.as_mut();
        let batch = self.eval_batch;
        self.clients
            .iter()
            .map(|c| evaluate(model, c.data(), batch))
            .collect()
    }

    /// Mean data loss of the *global* model over selected clients' local
    /// data (used by q-FedAvg's fair aggregation).
    pub fn local_losses_at_global(&mut self, selected: &[usize]) -> Vec<f32> {
        // Clients already hold the broadcast global parameters.
        selected
            .iter()
            .map(|&k| self.clients[k].evaluate_local(self.eval_batch).loss)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rfl_data::synth::gaussian::GaussianMixtureSpec;

    fn small_fed(parallel: bool, seed: u64) -> Federation {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = GaussianMixtureSpec::default_spec();
        let pool = spec.generate(80, None, &mut rng);
        let parts = rfl_data::partition::iid(80, 4, &mut rng);
        let test = spec.generate(40, None, &mut rng);
        let data = FederatedData::from_partition(&pool, &parts, test);
        let mut cfg = FlConfig::cross_silo();
        cfg.parallel = parallel;
        cfg.batch_size = 10;
        Federation::new(
            &data,
            ModelFactory::logistic(10, 4, 0.0),
            OptimizerFactory::sgd(0.1),
            &cfg,
            seed,
        )
    }

    #[test]
    fn all_clients_start_at_global() {
        let fed = small_fed(false, 0);
        let mut buf = Vec::new();
        for k in 0..fed.num_clients() {
            fed.client(k).read_params(&mut buf);
            assert_eq!(buf, fed.global());
        }
    }

    #[test]
    fn weighted_average_of_identical_is_identity() {
        let p = vec![vec![1.0, 2.0], vec![1.0, 2.0]];
        let avg = Federation::weighted_average(&p, &[0.3, 0.7]);
        assert_eq!(avg, vec![1.0, 2.0]);
    }

    #[test]
    fn weighted_average_weights_matter() {
        let p = vec![vec![0.0], vec![10.0]];
        assert_eq!(Federation::weighted_average(&p, &[0.9, 0.1]), vec![1.0]);
    }

    #[test]
    fn broadcast_meters_per_receiver() {
        let mut fed = small_fed(false, 1);
        let n_params = fed.num_params();
        fed.broadcast_params(&[0, 2]);
        assert_eq!(
            fed.channel().stats().download_bytes(),
            2 * (4 + 4 * n_params as u64)
        );
    }

    #[test]
    fn parallel_equals_serial() {
        let mut fed_s = small_fed(false, 2);
        let mut fed_p = small_fed(true, 2);
        let selected = vec![0, 1, 2, 3];
        let rules = vec![LocalRule::Plain; 4];
        fed_s.broadcast_params(&selected);
        fed_p.broadcast_params(&selected);
        let rs = fed_s.train_selected(&selected, &rules, 5);
        let rp = fed_p.train_selected(&selected, &rules, 5);
        for (a, b) in rs.iter().zip(&rp) {
            assert_eq!(a.loss, b.loss);
        }
        let ps = fed_s.collect_params(&selected);
        let pp = fed_p.collect_params(&selected);
        assert_eq!(ps, pp);
    }

    #[test]
    fn parallel_handles_sparse_selection() {
        let mut fed = small_fed(true, 3);
        let selected = vec![1, 3];
        let rules = vec![LocalRule::Plain; 2];
        let reports = fed.train_selected(&selected, &rules, 3);
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.steps == 3));
    }

    #[test]
    fn evaluate_per_client_returns_one_result_each() {
        let mut fed = small_fed(false, 4);
        let results = fed.evaluate_per_client();
        assert_eq!(results.len(), 4);
        assert!(results.iter().all(|r| r.n > 0));
    }

    #[test]
    fn train_changes_params_and_reduces_global_loss_after_aggregate() {
        let mut fed = small_fed(false, 5);
        let before = fed.evaluate_global().loss;
        for _ in 0..10 {
            let selected: Vec<usize> = (0..4).collect();
            fed.broadcast_params(&selected);
            let rules = vec![LocalRule::Plain; 4];
            fed.train_selected(&selected, &rules, 5);
            let params = fed.collect_params(&selected);
            let w = crate::sampling::renormalized_weights(fed.weights(), &selected);
            let avg = Federation::weighted_average(&params, &w);
            fed.set_global(avg);
        }
        let after = fed.evaluate_global().loss;
        assert!(after < before, "{before} → {after}");
    }

    #[test]
    fn tracing_does_not_change_results() {
        // The no-op sink is not enough: even an *enabled* tracer must be
        // invisible to training (it only reads the channel meters and the
        // clock, never the RNG streams).
        let run = |trace: bool| {
            let mut fed = small_fed(true, 7);
            let tracer = if trace {
                Tracer::enabled()
            } else {
                Tracer::disabled()
            };
            fed.set_tracer(tracer.clone());
            let selected = vec![0, 1, 2, 3];
            for _ in 0..3 {
                fed.broadcast_params(&selected);
                fed.train_selected(&selected, &vec![LocalRule::Plain; 4], 5);
                let params = fed.collect_params(&selected);
                let w = crate::sampling::renormalized_weights(fed.weights(), &selected);
                fed.set_global(Federation::weighted_average(&params, &w));
            }
            (fed.global().to_vec(), tracer.records().len())
        };
        let (off, n_off) = run(false);
        let (on, n_on) = run(true);
        assert_eq!(off, on, "tracing changed training results");
        assert_eq!(n_off, 0);
        assert!(n_on > 0);
    }

    #[test]
    fn span_bytes_match_comm_stats() {
        let mut fed = small_fed(false, 8);
        let tracer = Tracer::enabled();
        fed.set_tracer(tracer.clone());
        fed.broadcast_params(&[0, 1, 2]);
        let params = fed.collect_params(&[0, 1, 2]);
        assert_eq!(params.len(), 3);
        let recs = tracer.records();
        let sum = |kind: &str| -> u64 {
            recs.iter()
                .filter(|r| r.kind == kind)
                .filter_map(|r| r.counter("bytes"))
                .sum()
        };
        assert_eq!(sum("broadcast"), fed.channel().stats().download_bytes());
        assert_eq!(sum("upload"), fed.channel().stats().upload_bytes());
    }

    #[test]
    fn rng_streams_do_not_collide() {
        // Two distinct clients with identical data must still take different
        // batch sequences.
        let mut rng = StdRng::seed_from_u64(9);
        let spec = GaussianMixtureSpec::default_spec();
        let pool = spec.generate(40, None, &mut rng);
        let parts = [(0..40).collect::<Vec<_>>(), (0..40).collect::<Vec<_>>()];
        let test = spec.generate(8, None, &mut rng);
        let data = FederatedData {
            clients: parts.iter().map(|p| pool.select(p)).collect(),
            test,
        };
        let cfg = FlConfig {
            parallel: false,
            batch_size: 4,
            ..FlConfig::cross_silo()
        };
        let mut fed = Federation::new(
            &data,
            ModelFactory::logistic(10, 4, 0.0),
            OptimizerFactory::sgd(0.5),
            &cfg,
            9,
        );
        fed.broadcast_params(&[0, 1]);
        fed.train_selected(&[0, 1], &[LocalRule::Plain, LocalRule::Plain], 1);
        let params = fed.collect_params(&[0, 1]);
        assert_ne!(params[0], params[1], "clients sampled identical batches");
        let _ = rng.gen::<f32>();
    }
}

#[cfg(test)]
mod straggler_tests {
    use super::*;
    use crate::rules::LocalRule;
    use rfl_data::synth::gaussian::GaussianMixtureSpec;

    #[test]
    fn per_client_steps_are_respected() {
        let mut rng = StdRng::seed_from_u64(30);
        let spec = GaussianMixtureSpec::default_spec();
        let pool = spec.generate(80, None, &mut rng);
        let parts = rfl_data::partition::iid(80, 4, &mut rng);
        let test = spec.generate(20, None, &mut rng);
        let data = rfl_data::FederatedData::from_partition(&pool, &parts, test);
        let cfg = FlConfig {
            parallel: false,
            batch_size: 10,
            ..FlConfig::cross_silo()
        };
        let mut fed = Federation::new(
            &data,
            ModelFactory::logistic(10, 4, 0.0),
            OptimizerFactory::sgd(0.1),
            &cfg,
            30,
        );
        let selected = vec![0, 1, 2, 3];
        fed.broadcast_params(&selected);
        let rules = vec![LocalRule::Plain; 4];
        let reports = fed.train_selected_steps(&selected, &rules, &[1, 3, 5, 7]);
        let got: Vec<usize> = reports.iter().map(|r| r.steps).collect();
        assert_eq!(got, vec![1, 3, 5, 7]);
    }

    #[test]
    fn parallel_straggler_training_matches_serial() {
        let make = |parallel: bool| {
            let mut rng = StdRng::seed_from_u64(31);
            let spec = GaussianMixtureSpec::default_spec();
            let pool = spec.generate(80, None, &mut rng);
            let parts = rfl_data::partition::iid(80, 4, &mut rng);
            let test = spec.generate(20, None, &mut rng);
            let data = rfl_data::FederatedData::from_partition(&pool, &parts, test);
            let cfg = FlConfig {
                parallel,
                batch_size: 10,
                ..FlConfig::cross_silo()
            };
            Federation::new(
                &data,
                ModelFactory::logistic(10, 4, 0.0),
                OptimizerFactory::sgd(0.1),
                &cfg,
                31,
            )
        };
        let selected = vec![0, 1, 2, 3];
        let rules = vec![LocalRule::Plain; 4];
        let steps = [2usize, 4, 1, 6];
        let mut fed_s = make(false);
        let mut fed_p = make(true);
        fed_s.broadcast_params(&selected);
        fed_p.broadcast_params(&selected);
        fed_s.train_selected_steps(&selected, &rules, &steps);
        fed_p.train_selected_steps(&selected, &rules, &steps);
        assert_eq!(
            fed_s.collect_params(&selected),
            fed_p.collect_params(&selected)
        );
    }
}
