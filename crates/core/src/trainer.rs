//! The round loop driving any [`Algorithm`] over a [`Federation`].

use crate::federation::{Federation, FlConfig};
use crate::history::{History, RoundRecord};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfl_trace::Stopwatch;

/// Result an algorithm reports for one communication round.
#[derive(Clone, Debug)]
pub struct RoundOutcome {
    /// Mean local data loss across participants.
    pub train_loss: f32,
    /// Mean regularizer loss across participants (0 if not applicable).
    pub reg_loss: f32,
    /// Client indices the server selected for the round.
    pub selected: Vec<usize>,
    /// Clients whose upload made it into the round's aggregation — equal to
    /// `selected` on a perfect transport, a subset under faults.
    pub delivered: Vec<usize>,
}

/// A federated optimization algorithm. One call to `round` is one
/// communication round `c` of the paper's algorithms.
pub trait Algorithm: Send {
    /// Display name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Executes round `round` on the federation, using `rng` for client
    /// sampling and any algorithm-internal randomness.
    fn round(
        &mut self,
        fed: &mut Federation,
        cfg: &FlConfig,
        round: usize,
        rng: &mut StdRng,
    ) -> RoundOutcome;
}

/// A learning-rate schedule `round → lr`.
pub type LrSchedule = Box<dyn Fn(usize) -> f32 + Send>;

/// A per-round observer callback.
pub type RoundObserver = Box<dyn FnMut(&RoundRecord) + Send>;

/// Runs an algorithm for `cfg.rounds` rounds, recording history.
pub struct Trainer {
    cfg: FlConfig,
    /// Optional learning-rate schedule: `lr(t)` applied to every client at
    /// the start of round `t` (the theory uses `η_t = 2/(μ(γ+t))`).
    lr_schedule: Option<LrSchedule>,
    /// Per-round callback (progress reporting in experiment binaries).
    on_round: Option<RoundObserver>,
    /// Opt-in pipelined round engine (lazy federations only): selections
    /// come from a round-addressable stream so round `t+1`'s clients
    /// prefetch while round `t` trains, and evictions hibernate in the
    /// background.
    pipelined: bool,
}

impl Trainer {
    pub fn new(cfg: FlConfig) -> Self {
        Trainer {
            cfg,
            lr_schedule: None,
            on_round: None,
            pipelined: false,
        }
    }

    /// Enables the pipelined round engine on lazy-mode federations (no-op
    /// otherwise). Losses are bit-identical to the same selection stream
    /// without overlap; the selection *sequence* differs from the legacy
    /// rng-threaded draw when `sample_ratio < 1`.
    pub fn pipelined(mut self) -> Self {
        self.pipelined = true;
        self
    }

    /// Installs a learning-rate schedule.
    pub fn with_lr_schedule(mut self, f: impl Fn(usize) -> f32 + Send + 'static) -> Self {
        self.lr_schedule = Some(Box::new(f));
        self
    }

    /// Installs a per-round observer.
    pub fn with_observer(mut self, f: impl FnMut(&RoundRecord) + Send + 'static) -> Self {
        self.on_round = Some(Box::new(f));
        self
    }

    /// Runs the full training loop.
    pub fn run(&mut self, algo: &mut dyn Algorithm, fed: &mut Federation) -> History {
        let mut history = History::new();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x5EED_5EED);
        if self.pipelined && fed.is_lazy() {
            fed.enable_pipelined_rounds(self.cfg.seed, self.cfg.sample_ratio, self.cfg.rounds);
        }
        let run_span = fed.tracer().begin_run(algo.name());
        for round in 0..self.cfg.rounds {
            if let Some(schedule) = &self.lr_schedule {
                // Applied through the federation so lazy mode records the
                // rate for clients that are not materialized (an O(N) loop
                // over client handles would wake every registered client).
                fed.apply_lr_schedule(schedule(round));
            }
            let mut round_span = fed.tracer().begin_round(round);
            fed.begin_round(round as u64);
            let snap = fed.comm_snapshot();
            let fsnap = fed.fault_stats();
            let sw = Stopwatch::start();
            let outcome = algo.round(fed, &self.cfg, round, &mut rng);
            let seconds = sw.elapsed_secs();
            let comm = fed.comm_stats().since(&snap);
            let faults = fed.fault_stats().since(&fsnap);

            let do_eval = (round + 1) % self.cfg.eval_every == 0 || round + 1 == self.cfg.rounds;
            let eval = do_eval.then(|| fed.evaluate_global());

            let rss_bytes = crate::mem::current_rss_bytes();
            let peak_rss_bytes = crate::mem::peak_rss_bytes();
            round_span.counter("bytes_down", comm.download_bytes());
            round_span.counter("bytes_up", comm.upload_bytes());
            round_span.counter("bytes_delta", comm.delta_bytes());
            round_span.counter("participants", outcome.selected.len() as u64);
            if rss_bytes > 0 {
                round_span.counter("rss_bytes", rss_bytes);
            }
            crate::federation::fault_counters(&mut round_span, &faults);
            drop(round_span);

            let record = RoundRecord {
                round,
                train_loss: outcome.train_loss,
                reg_loss: outcome.reg_loss,
                test_loss: eval.map(|e| e.loss),
                test_acc: eval.map(|e| e.accuracy),
                seconds,
                down_bytes: comm.download_bytes(),
                up_bytes: comm.upload_bytes(),
                delta_bytes: comm.delta_bytes(),
                participants: outcome.selected.len(),
                delivered: outcome.delivered.len(),
                dropped_msgs: faults.dropped,
                retries: faults.retries,
                rss_bytes,
                peak_rss_bytes,
            };
            if let Some(obs) = &mut self.on_round {
                obs(&record);
            }
            history.push(record);
        }
        // Land any in-flight prefetch/hibernate waves so post-run registry
        // inspection sees a settled shard map.
        fed.quiesce();
        drop(run_span);
        history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::federation::{ModelFactory, OptimizerFactory};
    use rfl_data::synth::gaussian::GaussianMixtureSpec;
    use rfl_data::FederatedData;

    struct NoopAlgo;

    impl Algorithm for NoopAlgo {
        fn name(&self) -> &'static str {
            "noop"
        }
        fn round(
            &mut self,
            _fed: &mut Federation,
            _cfg: &FlConfig,
            round: usize,
            _rng: &mut StdRng,
        ) -> RoundOutcome {
            RoundOutcome {
                train_loss: 1.0 / (round + 1) as f32,
                reg_loss: 0.0,
                selected: vec![0, 1],
                delivered: vec![0, 1],
            }
        }
    }

    fn tiny_fed(seed: u64) -> (Federation, FlConfig) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = GaussianMixtureSpec::default_spec();
        let pool = spec.generate(40, None, &mut rng);
        let parts = rfl_data::partition::iid(40, 2, &mut rng);
        let test = spec.generate(16, None, &mut rng);
        let data = FederatedData::from_partition(&pool, &parts, test);
        let cfg = FlConfig {
            rounds: 5,
            eval_every: 2,
            parallel: false,
            batch_size: 8,
            ..FlConfig::cross_silo()
        };
        let fed = Federation::new(
            &data,
            ModelFactory::logistic(10, 4, 0.0),
            OptimizerFactory::sgd(0.1),
            &cfg,
            seed,
        );
        (fed, cfg)
    }

    #[test]
    fn records_every_round_and_evals_on_schedule() {
        let (mut fed, cfg) = tiny_fed(0);
        let h = Trainer::new(cfg).run(&mut NoopAlgo, &mut fed);
        assert_eq!(h.len(), 5);
        // eval_every = 2 → rounds 1, 3 evaluated, plus the final round 4.
        let evals: Vec<usize> = h
            .records()
            .iter()
            .filter(|r| r.test_acc.is_some())
            .map(|r| r.round)
            .collect();
        assert_eq!(evals, vec![1, 3, 4]);
    }

    #[test]
    fn lr_schedule_is_applied() {
        let (mut fed, cfg) = tiny_fed(1);
        let mut t = Trainer::new(cfg).with_lr_schedule(|round| 1.0 / (round + 1) as f32);
        t.run(&mut NoopAlgo, &mut fed);
        // After the last round (round 4), lr must be 1/5.
        assert!((fed.client(0).lr() - 0.2).abs() < 1e-6);
    }

    #[test]
    fn observer_sees_every_record() {
        let (mut fed, cfg) = tiny_fed(2);
        let count = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let c2 = count.clone();
        let mut t = Trainer::new(cfg).with_observer(move |_| {
            c2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        });
        t.run(&mut NoopAlgo, &mut fed);
        assert_eq!(count.load(std::sync::atomic::Ordering::SeqCst), 5);
    }
}
