//! Uniform b-bit quantization (Konečný et al.'s baseline compressor).

use super::{CompressedVec, Compressor};

/// Linear quantization into `2^bits` levels over the vector's `[min, max]`
/// range. `bits ≤ 8`; codes are packed at true bit granularity (LSB-first
/// within each byte), so a 2-bit payload really is a quarter of an 8-bit
/// one — the wire cost the policy advertises is the cost that is charged.
#[derive(Clone, Copy, Debug)]
pub struct UniformQuantizer {
    bits: u8,
}

impl UniformQuantizer {
    /// # Panics
    /// Panics unless `1 ≤ bits ≤ 8`.
    pub fn new(bits: u8) -> Self {
        assert!((1..=8).contains(&bits), "bits must be in 1..=8");
        UniformQuantizer { bits }
    }

    /// Bit-width per coordinate.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Recovers the quantizer from a payload's self-described level count
    /// (`words_f32[2]`). `None` unless it matches a width in `1..=8` — this
    /// is how adaptive-width receivers decode without side information.
    pub fn from_payload(payload: &CompressedVec) -> Option<UniformQuantizer> {
        let levels = *payload.words_f32.get(2)?;
        (1..=8u8)
            .find(|&b| ((1u32 << b) - 1) as f32 == levels)
            .map(UniformQuantizer::new)
    }

    fn levels(&self) -> u32 {
        (1u32 << self.bits) - 1
    }
}

impl Compressor for UniformQuantizer {
    fn name(&self) -> &'static str {
        "uniform-quantizer"
    }

    fn compress(&self, values: &[f32]) -> CompressedVec {
        let mut out = CompressedVec::default();
        self.compress_into(values, &mut out);
        out
    }

    fn decompress(&self, payload: &CompressedVec, len: usize) -> Vec<f32> {
        let mut out = Vec::with_capacity(len);
        self.decompress_into(payload, len, &mut out);
        out
    }

    fn compress_into(&self, values: &[f32], out: &mut CompressedVec) {
        let min = values.iter().copied().fold(f32::INFINITY, f32::min);
        let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let range = (max - min).max(1e-12);
        let levels = self.levels() as f32;
        let code = |v: f32| (((v - min) / range) * levels).round() as u16;
        out.bytes.clear();
        out.bytes
            .reserve((values.len() * self.bits as usize).div_ceil(8));
        // LSB-first bitstream: each code occupies exactly `bits` bits, with
        // the final byte zero-padded. For 4 and 8 bits this degenerates to
        // the familiar nibble / byte layouts.
        let mut acc: u16 = 0;
        let mut filled: u32 = 0;
        for &v in values {
            acc |= code(v) << filled;
            filled += u32::from(self.bits);
            while filled >= 8 {
                out.bytes.push(acc as u8);
                acc >>= 8;
                filled -= 8;
            }
        }
        if filled > 0 {
            out.bytes.push(acc as u8);
        }
        out.words_u32.clear();
        out.words_f32.clear();
        // The payload self-describes its level count so receivers (e.g. the
        // adaptive-width policy) need no side channel.
        out.words_f32.extend_from_slice(&[min, max, levels]);
    }

    fn decompress_into(&self, payload: &CompressedVec, len: usize, out: &mut Vec<f32>) {
        let min = payload.words_f32[0];
        let max = payload.words_f32[1];
        let range = (max - min).max(1e-12);
        let levels = self.levels() as f32;
        debug_assert_eq!(payload.words_f32.get(2).copied(), Some(levels));
        let lift = |c: u16| min + (c as f32 / levels) * range;
        out.clear();
        assert_eq!(
            payload.bytes.len(),
            (len * self.bits as usize).div_ceil(8),
            "code length mismatch"
        );
        out.reserve(len);
        let mask: u16 = (1u16 << self.bits) - 1;
        let mut acc: u16 = 0;
        let mut filled: u32 = 0;
        let mut feed = payload.bytes.iter();
        for _ in 0..len {
            while filled < u32::from(self.bits) {
                acc |= u16::from(*feed.next().expect("code underrun")) << filled;
                filled += 8;
            }
            out.push(lift(acc & mask));
            acc >>= self.bits;
            filled -= u32::from(self.bits);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::relative_error;

    #[test]
    fn eight_bit_error_is_small() {
        let x: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.37).sin()).collect();
        let q = UniformQuantizer::new(8);
        let (rec, bytes) = q.round_trip(&x);
        assert!(relative_error(&x, &rec) < 0.01);
        // 1 byte/code + 2 range floats + header ≪ 4 bytes/f32.
        assert!(bytes < 1000 * 4 / 3);
    }

    #[test]
    fn four_bit_packs_two_codes_per_byte() {
        let x: Vec<f32> = (0..101).map(|i| i as f32).collect();
        let q4 = UniformQuantizer::new(4).compress(&x);
        assert_eq!(q4.bytes.len(), 51);
        let rec = UniformQuantizer::new(4).decompress(&q4, 101);
        assert_eq!(rec.len(), 101);
        // Endpoints still exact.
        assert!((rec[0] - 0.0).abs() < 1e-4);
        assert!((rec[100] - 100.0).abs() < 1e-4);
        // Code payload is half the 8-bit variant's (headers aside).
        let q8 = UniformQuantizer::new(8).compress(&x);
        assert_eq!(q8.bytes.len(), 101);
        assert!(q4.wire_bytes() < q8.wire_bytes());
    }

    #[test]
    fn low_bit_widths_pack_below_nibble_granularity() {
        let x: Vec<f32> = (0..101).map(|i| (i as f32 * 0.3).sin()).collect();
        for bits in 1u8..=8 {
            let q = UniformQuantizer::new(bits);
            let payload = q.compress(&x);
            assert_eq!(
                payload.bytes.len(),
                (101 * bits as usize).div_ceil(8),
                "bits={bits}"
            );
            assert_eq!(q.decompress(&payload, 101).len(), 101, "bits={bits}");
        }
        // 2-bit codes cost a quarter of 8-bit ones, not half.
        let q2 = UniformQuantizer::new(2).compress(&x);
        let q8 = UniformQuantizer::new(8).compress(&x);
        assert_eq!(q2.bytes.len(), 26);
        assert_eq!(q8.bytes.len(), 101);
    }

    #[test]
    fn odd_length_round_trips_at_low_bits() {
        let x = vec![-1.0f32, 0.5, 2.0];
        let (rec, _) = UniformQuantizer::new(2).round_trip(&x);
        assert_eq!(rec.len(), 3);
        assert!((rec[0] + 1.0).abs() < 1e-4);
        assert!((rec[2] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn fewer_bits_more_error() {
        let x: Vec<f32> = (0..500).map(|i| (i as f32 * 0.11).cos()).collect();
        let e8 = relative_error(&x, &UniformQuantizer::new(8).round_trip(&x).0);
        let e4 = relative_error(&x, &UniformQuantizer::new(4).round_trip(&x).0);
        let e1 = relative_error(&x, &UniformQuantizer::new(1).round_trip(&x).0);
        assert!(e8 < e4 && e4 < e1, "{e8} {e4} {e1}");
    }

    #[test]
    fn endpoints_are_exact() {
        let x = vec![-2.0f32, 0.0, 5.0];
        let (rec, _) = UniformQuantizer::new(8).round_trip(&x);
        assert!((rec[0] + 2.0).abs() < 1e-5);
        assert!((rec[2] - 5.0).abs() < 1e-5);
    }

    #[test]
    fn constant_vector_is_exact() {
        let x = vec![1.5f32; 64];
        let (rec, _) = UniformQuantizer::new(2).round_trip(&x);
        for v in rec {
            assert!((v - 1.5).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "bits")]
    fn rejects_zero_bits() {
        UniformQuantizer::new(0);
    }
}
