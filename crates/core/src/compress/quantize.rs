//! Uniform b-bit quantization (Konečný et al.'s baseline compressor).

use super::{CompressedVec, Compressor};

/// Linear quantization into `2^bits` levels over the vector's `[min, max]`
/// range. `bits ≤ 8`; for `bits ≤ 4` two codes are packed per byte.
#[derive(Clone, Copy, Debug)]
pub struct UniformQuantizer {
    bits: u8,
}

impl UniformQuantizer {
    /// # Panics
    /// Panics unless `1 ≤ bits ≤ 8`.
    pub fn new(bits: u8) -> Self {
        assert!((1..=8).contains(&bits), "bits must be in 1..=8");
        UniformQuantizer { bits }
    }

    fn levels(&self) -> u32 {
        (1u32 << self.bits) - 1
    }
}

impl Compressor for UniformQuantizer {
    fn name(&self) -> &'static str {
        "uniform-quantizer"
    }

    fn compress(&self, values: &[f32]) -> CompressedVec {
        let min = values.iter().copied().fold(f32::INFINITY, f32::min);
        let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let range = (max - min).max(1e-12);
        let levels = self.levels() as f32;
        let codes: Vec<u8> = values
            .iter()
            .map(|&v| (((v - min) / range) * levels).round() as u8)
            .collect();
        let bytes = if self.bits <= 4 {
            // Two codes per byte: low nibble first.
            codes
                .chunks(2)
                .map(|pair| pair[0] | (pair.get(1).copied().unwrap_or(0) << 4))
                .collect()
        } else {
            codes
        };
        CompressedVec {
            words_u32: Vec::new(),
            words_f32: vec![min, max],
            bytes,
        }
    }

    fn decompress(&self, payload: &CompressedVec, len: usize) -> Vec<f32> {
        let codes: Vec<u8> = if self.bits <= 4 {
            assert_eq!(payload.bytes.len(), len.div_ceil(2), "code length mismatch");
            let mut out = Vec::with_capacity(len);
            for &b in &payload.bytes {
                out.push(b & 0x0F);
                if out.len() < len {
                    out.push(b >> 4);
                }
            }
            out
        } else {
            assert_eq!(payload.bytes.len(), len, "code length mismatch");
            payload.bytes.clone()
        };
        let min = payload.words_f32[0];
        let max = payload.words_f32[1];
        let range = (max - min).max(1e-12);
        let levels = self.levels() as f32;
        codes
            .iter()
            .map(|&c| min + (c as f32 / levels) * range)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::relative_error;

    #[test]
    fn eight_bit_error_is_small() {
        let x: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.37).sin()).collect();
        let q = UniformQuantizer::new(8);
        let (rec, bytes) = q.round_trip(&x);
        assert!(relative_error(&x, &rec) < 0.01);
        // 1 byte/code + 2 range floats + header ≪ 4 bytes/f32.
        assert!(bytes < 1000 * 4 / 3);
    }

    #[test]
    fn four_bit_packs_two_codes_per_byte() {
        let x: Vec<f32> = (0..101).map(|i| i as f32).collect();
        let q4 = UniformQuantizer::new(4).compress(&x);
        assert_eq!(q4.bytes.len(), 51);
        let rec = UniformQuantizer::new(4).decompress(&q4, 101);
        assert_eq!(rec.len(), 101);
        // Endpoints still exact.
        assert!((rec[0] - 0.0).abs() < 1e-4);
        assert!((rec[100] - 100.0).abs() < 1e-4);
        // Code payload is half the 8-bit variant's (headers aside).
        let q8 = UniformQuantizer::new(8).compress(&x);
        assert_eq!(q8.bytes.len(), 101);
        assert!(q4.wire_bytes() < q8.wire_bytes());
    }

    #[test]
    fn odd_length_round_trips_at_low_bits() {
        let x = vec![-1.0f32, 0.5, 2.0];
        let (rec, _) = UniformQuantizer::new(2).round_trip(&x);
        assert_eq!(rec.len(), 3);
        assert!((rec[0] + 1.0).abs() < 1e-4);
        assert!((rec[2] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn fewer_bits_more_error() {
        let x: Vec<f32> = (0..500).map(|i| (i as f32 * 0.11).cos()).collect();
        let e8 = relative_error(&x, &UniformQuantizer::new(8).round_trip(&x).0);
        let e4 = relative_error(&x, &UniformQuantizer::new(4).round_trip(&x).0);
        let e1 = relative_error(&x, &UniformQuantizer::new(1).round_trip(&x).0);
        assert!(e8 < e4 && e4 < e1, "{e8} {e4} {e1}");
    }

    #[test]
    fn endpoints_are_exact() {
        let x = vec![-2.0f32, 0.0, 5.0];
        let (rec, _) = UniformQuantizer::new(8).round_trip(&x);
        assert!((rec[0] + 2.0).abs() < 1e-5);
        assert!((rec[2] - 5.0).abs() < 1e-5);
    }

    #[test]
    fn constant_vector_is_exact() {
        let x = vec![1.5f32; 64];
        let (rec, _) = UniformQuantizer::new(2).round_trip(&x);
        for v in rec {
            assert!((v - 1.5).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "bits")]
    fn rejects_zero_bits() {
        UniformQuantizer::new(0);
    }
}
