//! Top-k sparsification: keep only the k largest-magnitude coordinates.

use super::{CompressedVec, Compressor};

/// Keeps the `k` largest-|value| entries (index + value pairs on the wire).
#[derive(Clone, Copy, Debug)]
pub struct TopK {
    k: usize,
}

impl TopK {
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        TopK { k }
    }

    /// Keep a fraction of the coordinates of an `n`-vector.
    pub fn with_ratio(n: usize, ratio: f32) -> Self {
        assert!((0.0..=1.0).contains(&ratio));
        TopK::new(((n as f32 * ratio).ceil() as usize).max(1))
    }
}

impl Compressor for TopK {
    fn name(&self) -> &'static str {
        "top-k"
    }

    fn compress(&self, values: &[f32]) -> CompressedVec {
        let mut out = CompressedVec::default();
        self.compress_into(values, &mut out);
        out
    }

    fn decompress(&self, payload: &CompressedVec, len: usize) -> Vec<f32> {
        let mut out = Vec::with_capacity(len);
        self.decompress_into(payload, len, &mut out);
        out
    }

    fn compress_into(&self, values: &[f32], out: &mut CompressedVec) {
        let k = self.k.min(values.len());
        // The selection scratch still allocates; the payload sections reuse
        // the caller's buffers.
        let mut order: Vec<usize> = (0..values.len()).collect();
        order.select_nth_unstable_by(k.saturating_sub(1), |&a, &b| {
            values[b].abs().total_cmp(&values[a].abs())
        });
        let kept = &mut order[..k];
        kept.sort_unstable();
        out.words_u32.clear();
        out.words_u32.extend(kept.iter().map(|&i| i as u32));
        out.words_f32.clear();
        out.words_f32.extend(kept.iter().map(|&i| values[i]));
        out.bytes.clear();
    }

    fn decompress_into(&self, payload: &CompressedVec, len: usize, out: &mut Vec<f32>) {
        out.clear();
        out.resize(len, 0.0);
        for (&i, &v) in payload.words_u32.iter().zip(&payload.words_f32) {
            out[i as usize] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::relative_error;

    #[test]
    fn keeps_the_largest_coordinates() {
        let x = vec![0.1f32, -5.0, 0.2, 3.0, -0.05];
        let (rec, _) = TopK::new(2).round_trip(&x);
        assert_eq!(rec, vec![0.0, -5.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn k_equal_len_is_lossless() {
        let x = vec![1.0f32, -2.0, 3.5];
        let (rec, _) = TopK::new(3).round_trip(&x);
        assert_eq!(rec, x);
    }

    #[test]
    fn error_decreases_with_k() {
        let x: Vec<f32> = (0..200).map(|i| ((i * 37) % 101) as f32 - 50.0).collect();
        let e10 = relative_error(&x, &TopK::new(10).round_trip(&x).0);
        let e50 = relative_error(&x, &TopK::new(50).round_trip(&x).0);
        let e150 = relative_error(&x, &TopK::new(150).round_trip(&x).0);
        assert!(e10 > e50 && e50 > e150);
    }

    #[test]
    fn wire_cost_scales_with_k() {
        let x = vec![1.0f32; 1000];
        let b10 = TopK::new(10).round_trip(&x).1;
        let b100 = TopK::new(100).round_trip(&x).1;
        assert!(b100 > 5 * b10);
        assert!(b10 < 1000); // far below the dense 4000 B
    }

    #[test]
    fn with_ratio_rounds_up() {
        let t = TopK::with_ratio(10, 0.05);
        let (rec, _) = t.round_trip(&[1.0; 10]);
        assert_eq!(rec.iter().filter(|&&v| v != 0.0).count(), 1);
    }
}
