//! Gradient/model compression — the orthogonal communication-efficiency
//! axis the paper's related work surveys (Konečný et al.'s quantization and
//! sub-sampling, sketching à la FetchSGD).
//!
//! A [`Compressor`] maps a parameter vector to a compact wire form and
//! back. Compressors are *lossy*; the round-trip error is the price paid
//! for fewer bytes. They compose with any algorithm whose uploads are
//! parameter vectors (see the `ext_compression` experiment).

mod quantize;
mod sketch;
mod topk;

pub use quantize::UniformQuantizer;
pub use sketch::CountSketch;
pub use topk::TopK;

/// A lossy vector codec with an accountable wire size.
pub trait Compressor: Send + Sync {
    /// Human-readable name.
    fn name(&self) -> &'static str;

    /// Compresses `values`; returns the wire payload.
    fn compress(&self, values: &[f32]) -> CompressedVec;

    /// Reconstructs a length-`len` vector from a payload.
    fn decompress(&self, payload: &CompressedVec, len: usize) -> Vec<f32>;

    /// Compresses `values` into a caller-owned payload, reusing its section
    /// buffers. Implementations override this to be allocation-free in the
    /// warm steady state.
    fn compress_into(&self, values: &[f32], out: &mut CompressedVec) {
        *out = self.compress(values);
    }

    /// Reconstructs a length-`len` vector into a caller-owned workspace.
    /// Bit-identical to [`Compressor::decompress`]; implementations override
    /// this to avoid the per-call `Vec` the boxed form returns.
    fn decompress_into(&self, payload: &CompressedVec, len: usize, out: &mut Vec<f32>) {
        let v = self.decompress(payload, len);
        out.clear();
        out.extend_from_slice(&v);
    }

    /// Round-trips a vector, returning the reconstruction and its wire cost
    /// in bytes.
    fn round_trip(&self, values: &[f32]) -> (Vec<f32>, usize) {
        let payload = self.compress(values);
        let bytes = payload.wire_bytes();
        (self.decompress(&payload, values.len()), bytes)
    }
}

/// A compressed payload: opaque scalar words plus structural metadata.
/// Wire cost = 4 bytes per `u32` word + 4 bytes per `f32` word + header.
#[derive(Clone, Debug, Default)]
pub struct CompressedVec {
    pub words_u32: Vec<u32>,
    pub words_f32: Vec<f32>,
    /// Payloads that pack sub-word data (e.g. 8-bit quantization codes).
    pub bytes: Vec<u8>,
}

impl CompressedVec {
    /// Encoded-frame header: three little-endian `u32` section lengths.
    pub const HEADER_BYTES: usize = 12;

    /// Total bytes on the wire. Definitionally exact: this is the length
    /// [`CompressedVec::encode_into`] produces, pinned by test.
    pub fn wire_bytes(&self) -> usize {
        Self::HEADER_BYTES + self.words_u32.len() * 4 + self.words_f32.len() * 4 + self.bytes.len()
    }

    /// Serializes the payload: `[u32 n_u32][u32 n_f32][u32 n_bytes]` followed
    /// by the three sections, all little-endian. `f32` words are written via
    /// `to_le_bytes`, so NaN/inf bit patterns survive exactly. Clears `out`
    /// first; the encoded length always equals [`CompressedVec::wire_bytes`].
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.reserve(self.wire_bytes());
        out.extend_from_slice(&(self.words_u32.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.words_f32.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.bytes.len() as u32).to_le_bytes());
        for w in &self.words_u32 {
            out.extend_from_slice(&w.to_le_bytes());
        }
        for w in &self.words_f32 {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&self.bytes);
    }

    /// Parses an encoded payload into `self`, reusing the section buffers.
    /// Returns `false` (leaving `self` unspecified) unless `body` is exactly
    /// one well-formed frame: header present, and the body length equal to
    /// the sum the header promises — no trailing bytes tolerated.
    pub fn decode_from(&mut self, body: &[u8]) -> bool {
        if body.len() < Self::HEADER_BYTES {
            return false;
        }
        let word = |i: usize| {
            u32::from_le_bytes([
                body[4 * i],
                body[4 * i + 1],
                body[4 * i + 2],
                body[4 * i + 3],
            ]) as usize
        };
        let (n_u32, n_f32, n_bytes) = (word(0), word(1), word(2));
        let Some(expect) = 4usize
            .checked_mul(n_u32 + n_f32)
            .and_then(|w| w.checked_add(Self::HEADER_BYTES + n_bytes))
        else {
            return false;
        };
        if body.len() != expect {
            return false;
        }
        let mut at = Self::HEADER_BYTES;
        self.words_u32.clear();
        self.words_u32.extend(
            body[at..at + 4 * n_u32]
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])),
        );
        at += 4 * n_u32;
        self.words_f32.clear();
        self.words_f32.extend(
            body[at..at + 4 * n_f32]
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])),
        );
        at += 4 * n_f32;
        self.bytes.clear();
        self.bytes.extend_from_slice(&body[at..]);
        true
    }

    /// One-shot decode into a fresh payload.
    pub fn decode(body: &[u8]) -> Option<CompressedVec> {
        let mut out = CompressedVec::default();
        out.decode_from(body).then_some(out)
    }
}

/// Wire-compression policy for client uploads and δ syncs. `Copy` so it can
/// ride inside [`crate::FlConfig`]; the default (`None`) leaves every byte
/// pin and the canonical loss untouched.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum Compression {
    /// Dense f32 uploads — the status quo.
    #[default]
    None,
    /// Fixed-width uniform quantization (`1..=8` bits per coordinate).
    Quantize { bits: u8 },
    /// Top-k sparsification keeping `ceil(ratio·d)` coordinates.
    TopK { ratio: f32 },
    /// Count-sketch projection with a policy-level seed shared by both ends.
    Sketch { rows: u16, cols: u32, seed: u64 },
    /// Per-tensor bit-width: each upload picks its own quantizer width from
    /// the tensor's norm and size (see [`adaptive_bits`]); the chosen width
    /// is self-described by the payload so the receiver needs no side data.
    Adaptive { max_bits: u8 },
}

impl Compression {
    /// `true` when uploads are compressed.
    pub fn is_enabled(&self) -> bool {
        !matches!(self, Compression::None)
    }

    /// Whether uploads under this policy carry an error-feedback residual.
    /// Biased codecs (quantization, top-k) benefit: the residual re-injects
    /// exactly what rounding discarded. The count sketch is an *unbiased*
    /// estimator whose reconstruction error is zero-mean collision noise —
    /// feeding that noise back correlates it across rounds and diverges,
    /// so sketch uploads stay stateless.
    pub fn uses_error_feedback(&self) -> bool {
        !matches!(self, Compression::None | Compression::Sketch { .. })
    }

    /// The compressor the *sender* uses for this vector. `None` iff the
    /// policy is `Compression::None`.
    pub fn for_upload(&self, values: &[f32]) -> Option<AnyCompressor> {
        match *self {
            Compression::None => None,
            Compression::Quantize { bits } => {
                Some(AnyCompressor::Quantize(UniformQuantizer::new(bits)))
            }
            Compression::TopK { ratio } => {
                Some(AnyCompressor::TopK(TopK::with_ratio(values.len(), ratio)))
            }
            Compression::Sketch { rows, cols, seed } => Some(AnyCompressor::Sketch(
                CountSketch::new(rows as usize, cols as usize, seed),
            )),
            Compression::Adaptive { max_bits } => Some(AnyCompressor::Quantize(
                UniformQuantizer::new(adaptive_bits(values, max_bits)),
            )),
        }
    }

    /// The compressor the *receiver* uses for a payload whose original
    /// length was `len`. For `Adaptive` the bit-width is recovered from the
    /// payload itself; `None` when the policy is off or the payload does not
    /// self-describe a valid width.
    pub fn for_payload(&self, payload: &CompressedVec, len: usize) -> Option<AnyCompressor> {
        match *self {
            Compression::Adaptive { .. } => {
                UniformQuantizer::from_payload(payload).map(AnyCompressor::Quantize)
            }
            Compression::TopK { ratio } => Some(AnyCompressor::TopK(TopK::with_ratio(len, ratio))),
            _ => self.for_upload(&[]),
        }
    }

    /// Fixed-width wire form carried by the socket handshake's `Welcome`:
    /// `(mode, bits, ratio, rows, cols, seed)`.
    pub fn to_wire(self) -> (u8, u8, f32, u16, u32, u64) {
        match self {
            Compression::None => (0, 0, 0.0, 0, 0, 0),
            Compression::Quantize { bits } => (1, bits, 0.0, 0, 0, 0),
            Compression::TopK { ratio } => (2, 0, ratio, 0, 0, 0),
            Compression::Sketch { rows, cols, seed } => (3, 0, 0.0, rows, cols, seed),
            Compression::Adaptive { max_bits } => (4, max_bits, 0.0, 0, 0, 0),
        }
    }

    /// Inverse of [`Compression::to_wire`]; `None` on an unknown mode or
    /// out-of-range parameters.
    pub fn from_wire(
        mode: u8,
        bits: u8,
        ratio: f32,
        rows: u16,
        cols: u32,
        seed: u64,
    ) -> Option<Compression> {
        match mode {
            0 => Some(Compression::None),
            1 if (1..=8).contains(&bits) => Some(Compression::Quantize { bits }),
            2 if (0.0..=1.0).contains(&ratio) => Some(Compression::TopK { ratio }),
            3 if rows % 2 == 1 && rows > 0 && cols > 0 => {
                Some(Compression::Sketch { rows, cols, seed })
            }
            4 if (1..=8).contains(&bits) => Some(Compression::Adaptive { max_bits: bits }),
            _ => None,
        }
    }

    /// Parses the CLI/bench spelling of a policy: `none`,
    /// `quantize:<bits>`, `topk:<ratio>`, `sketch:<rows>:<cols>:<seed>`, or
    /// `adaptive:<max_bits>`. `None` on anything else (including
    /// out-of-range parameters, via [`Compression::from_wire`] validation).
    pub fn parse(spec: &str) -> Option<Compression> {
        let parts: Vec<&str> = spec.split(':').collect();
        let policy = match parts.as_slice() {
            ["none"] => Compression::None,
            ["quantize", bits] => Compression::Quantize {
                bits: bits.parse().ok()?,
            },
            ["topk", ratio] => Compression::TopK {
                ratio: ratio.parse().ok()?,
            },
            ["sketch", rows, cols, seed] => Compression::Sketch {
                rows: rows.parse().ok()?,
                cols: cols.parse().ok()?,
                seed: seed.parse().ok()?,
            },
            ["adaptive", max_bits] => Compression::Adaptive {
                max_bits: max_bits.parse().ok()?,
            },
            _ => return None,
        };
        // Round-trip through the wire validation so CLI specs and socket
        // handshakes accept exactly the same parameter space.
        let (m, b, r, rw, c, s) = policy.to_wire();
        Compression::from_wire(m, b, r, rw, c, s)
    }
}

/// Stack-allocated compressor dispatcher so policy resolution never boxes.
#[derive(Clone, Copy, Debug)]
pub enum AnyCompressor {
    Quantize(UniformQuantizer),
    TopK(TopK),
    Sketch(CountSketch),
}

impl Compressor for AnyCompressor {
    fn name(&self) -> &'static str {
        match self {
            AnyCompressor::Quantize(c) => c.name(),
            AnyCompressor::TopK(c) => c.name(),
            AnyCompressor::Sketch(c) => c.name(),
        }
    }

    fn compress(&self, values: &[f32]) -> CompressedVec {
        match self {
            AnyCompressor::Quantize(c) => c.compress(values),
            AnyCompressor::TopK(c) => c.compress(values),
            AnyCompressor::Sketch(c) => c.compress(values),
        }
    }

    fn decompress(&self, payload: &CompressedVec, len: usize) -> Vec<f32> {
        match self {
            AnyCompressor::Quantize(c) => c.decompress(payload, len),
            AnyCompressor::TopK(c) => c.decompress(payload, len),
            AnyCompressor::Sketch(c) => c.decompress(payload, len),
        }
    }

    fn compress_into(&self, values: &[f32], out: &mut CompressedVec) {
        match self {
            AnyCompressor::Quantize(c) => c.compress_into(values, out),
            AnyCompressor::TopK(c) => c.compress_into(values, out),
            AnyCompressor::Sketch(c) => c.compress_into(values, out),
        }
    }

    fn decompress_into(&self, payload: &CompressedVec, len: usize, out: &mut Vec<f32>) {
        match self {
            AnyCompressor::Quantize(c) => c.decompress_into(payload, len, out),
            AnyCompressor::TopK(c) => c.decompress_into(payload, len, out),
            AnyCompressor::Sketch(c) => c.decompress_into(payload, len, out),
        }
    }
}

/// Per-tensor adaptive bit-width, keyed on the tensor's norm and size: the
/// wider the dynamic range relative to the RMS magnitude, the more levels a
/// uniform grid needs. Pure `f32` arithmetic in index order, so the sender
/// and any replica derive the same width from the same values.
pub fn adaptive_bits(values: &[f32], max_bits: u8) -> u8 {
    assert!((1..=8).contains(&max_bits), "max_bits must be in 1..=8");
    if values.len() <= 32 {
        // Tiny tensors are cheap — keep the full precision budget.
        return max_bits;
    }
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    let mut norm2 = 0.0f32;
    for &v in values {
        min = min.min(v);
        max = max.max(v);
        norm2 += v * v;
    }
    let range = max - min;
    let rms = (norm2 / values.len() as f32).sqrt();
    if !range.is_finite() || !rms.is_finite() {
        return max_bits;
    }
    if range <= 0.0 {
        return 1;
    }
    let bits = ((range / rms.max(1e-12)) + 1.0).log2().ceil() as i64;
    bits.clamp(1, max_bits as i64) as u8
}

/// Error-feedback compression of a model upload. The residual left by the
/// previous round is folded into this round's update before compression and
/// replaced by the new quantization error:
///
/// ```text
/// update   = (params − global) + residual
/// payload  = compress(update)
/// residual = update − decompress(payload)
/// ```
///
/// All buffers are caller-owned workspaces; `residual` is (re)sized to `d`
/// on first use. The exact loop shapes here are the bit-exactness contract
/// between the in-process fold and the socket client loop — both call this
/// one function.
///
/// Policies for which [`Compression::uses_error_feedback`] is `false`
/// (the unbiased count sketch) keep the residual pinned at zero: the
/// update is compressed statelessly and no reconstruction noise is
/// carried into the next round.
pub fn ef_compress_update(
    policy: Compression,
    params: &[f32],
    global: &[f32],
    residual: &mut Vec<f32>,
    update: &mut Vec<f32>,
    recon: &mut Vec<f32>,
    payload: &mut CompressedVec,
) -> AnyCompressor {
    let d = params.len();
    assert_eq!(global.len(), d, "global/params dimension mismatch");
    let feedback = policy.uses_error_feedback();
    if residual.len() != d || !feedback {
        residual.clear();
        residual.resize(d, 0.0);
    }
    update.clear();
    update.extend(
        params
            .iter()
            .zip(global)
            .zip(residual.iter())
            .map(|((&p, &g), &r)| p - g + r),
    );
    let comp = policy.for_upload(update).expect("compression enabled");
    comp.compress_into(update, payload);
    comp.decompress_into(payload, d, recon);
    if feedback {
        for (r, (&u, &c)) in residual.iter_mut().zip(update.iter().zip(recon.iter())) {
            *r = u - c;
        }
    }
    comp
}

/// Receiver side of [`ef_compress_update`]: decompress a received upload and
/// rebuild absolute parameters by adding the broadcast global back in.
/// Returns `false` when the payload does not resolve under `policy`.
pub fn decode_upload_into(
    policy: Compression,
    payload: &CompressedVec,
    global: &[f32],
    out: &mut Vec<f32>,
) -> bool {
    let Some(comp) = policy.for_payload(payload, global.len()) else {
        return false;
    };
    comp.decompress_into(payload, global.len(), out);
    for (o, &g) in out.iter_mut().zip(global) {
        *o += g;
    }
    true
}

/// Compress a δ-sync vector (no error feedback — δ maps are stateless).
pub fn compress_plain(
    policy: Compression,
    values: &[f32],
    payload: &mut CompressedVec,
) -> AnyCompressor {
    let comp = policy.for_upload(values).expect("compression enabled");
    comp.compress_into(values, payload);
    comp
}

/// Receiver side of [`compress_plain`].
pub fn decode_plain_into(
    policy: Compression,
    payload: &CompressedVec,
    len: usize,
    out: &mut Vec<f32>,
) -> bool {
    let Some(comp) = policy.for_payload(payload, len) else {
        return false;
    };
    comp.decompress_into(payload, len, out);
    true
}

/// Relative L2 reconstruction error `‖x − x̂‖ / ‖x‖`.
pub fn relative_error(original: &[f32], reconstructed: &[f32]) -> f32 {
    assert_eq!(original.len(), reconstructed.len());
    let num: f32 = original
        .iter()
        .zip(reconstructed)
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    let den: f32 = original.iter().map(|v| v * v).sum();
    if den == 0.0 {
        return if num == 0.0 { 0.0 } else { f32::INFINITY };
    }
    (num / den).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_basics() {
        let x = vec![3.0, 4.0];
        assert_eq!(relative_error(&x, &x), 0.0);
        let y = vec![0.0, 0.0];
        assert!((relative_error(&x, &y) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn wire_bytes_counts_all_sections() {
        let c = CompressedVec {
            words_u32: vec![1, 2],
            words_f32: vec![0.5],
            bytes: vec![0; 10],
        };
        assert_eq!(c.wire_bytes(), 12 + 8 + 4 + 10);
    }

    /// Satellite pin: `wire_bytes()` is the *real* encoded length, not a
    /// notional estimate — encode and compare.
    #[test]
    fn wire_bytes_equals_encoded_length() {
        let shapes = [
            CompressedVec::default(),
            CompressedVec {
                words_u32: vec![7; 13],
                words_f32: vec![f32::NAN, f32::NEG_INFINITY, -0.0],
                bytes: vec![0xAB; 29],
            },
            UniformQuantizer::new(3).compress(&[1.0, -2.0, 0.5]),
            TopK::new(2).compress(&[1.0, -2.0, 0.5, 9.0]),
            CountSketch::new(3, 17, 42).compress(&[1.0; 100]),
        ];
        let mut wire = Vec::new();
        for c in &shapes {
            c.encode_into(&mut wire);
            assert_eq!(wire.len(), c.wire_bytes());
        }
    }

    #[test]
    fn codec_round_trip_is_bit_exact() {
        let c = CompressedVec {
            words_u32: vec![0, u32::MAX, 12345],
            words_f32: vec![f32::NAN, f32::INFINITY, -0.0, 1.5e-39],
            bytes: vec![1, 2, 3, 4, 5],
        };
        let mut wire = Vec::new();
        c.encode_into(&mut wire);
        let d = CompressedVec::decode(&wire).unwrap();
        assert_eq!(c.words_u32, d.words_u32);
        assert_eq!(
            c.words_f32.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            d.words_f32.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(c.bytes, d.bytes);
    }

    #[test]
    fn decode_rejects_malformed_frames() {
        let c = UniformQuantizer::new(8).compress(&[1.0, 2.0, 3.0]);
        let mut wire = Vec::new();
        c.encode_into(&mut wire);
        assert!(CompressedVec::decode(&wire[..wire.len() - 1]).is_none());
        assert!(CompressedVec::decode(&wire[..4]).is_none());
        let mut extra = wire.clone();
        extra.push(0);
        assert!(CompressedVec::decode(&extra).is_none());
        // Section lengths that overflow the length arithmetic.
        let mut bogus = vec![0xFFu8; 12];
        bogus.extend_from_slice(&[0; 16]);
        assert!(CompressedVec::decode(&bogus).is_none());
    }

    #[test]
    fn policy_wire_form_round_trips() {
        let policies = [
            Compression::None,
            Compression::Quantize { bits: 4 },
            Compression::TopK { ratio: 0.1 },
            Compression::Sketch {
                rows: 5,
                cols: 401,
                seed: 99,
            },
            Compression::Adaptive { max_bits: 8 },
        ];
        for p in policies {
            let (mode, bits, ratio, rows, cols, seed) = p.to_wire();
            assert_eq!(
                Compression::from_wire(mode, bits, ratio, rows, cols, seed),
                Some(p)
            );
        }
        assert_eq!(Compression::from_wire(9, 0, 0.0, 0, 0, 0), None);
        assert_eq!(Compression::from_wire(1, 0, 0.0, 0, 0, 0), None);
        assert_eq!(Compression::from_wire(3, 0, 0.0, 4, 7, 0), None);
    }

    #[test]
    fn policy_cli_specs_parse() {
        assert_eq!(Compression::parse("none"), Some(Compression::None));
        assert_eq!(
            Compression::parse("quantize:8"),
            Some(Compression::Quantize { bits: 8 })
        );
        assert_eq!(
            Compression::parse("topk:0.05"),
            Some(Compression::TopK { ratio: 0.05 })
        );
        assert_eq!(
            Compression::parse("sketch:5:401:99"),
            Some(Compression::Sketch {
                rows: 5,
                cols: 401,
                seed: 99
            })
        );
        assert_eq!(
            Compression::parse("adaptive:6"),
            Some(Compression::Adaptive { max_bits: 6 })
        );
        // Same validation surface as the wire form.
        assert_eq!(Compression::parse("quantize:9"), None);
        assert_eq!(Compression::parse("sketch:4:7:0"), None);
        assert_eq!(Compression::parse("topk:1.5"), None);
        assert_eq!(Compression::parse("gzip"), None);
        assert_eq!(Compression::parse("quantize:8:extra"), None);
    }

    #[test]
    fn adaptive_bits_tracks_norm_and_size() {
        // Tiny tensors keep the full budget.
        assert_eq!(adaptive_bits(&[1.0; 8], 8), 8);
        // A constant vector needs a single level.
        assert_eq!(adaptive_bits(&[2.5; 100], 8), 1);
        // Wide dynamic range relative to RMS demands more bits than a
        // narrow one, and the result never exceeds the budget.
        let mut spiky = vec![0.01f32; 1000];
        spiky[7] = 100.0;
        let flat: Vec<f32> = (0..1000).map(|i| 1.0 + (i % 7) as f32 * 1e-3).collect();
        let b_spiky = adaptive_bits(&spiky, 8);
        let b_flat = adaptive_bits(&flat, 8);
        assert!(b_spiky > b_flat, "{b_spiky} vs {b_flat}");
        assert!(b_spiky <= 8);
        assert_eq!(adaptive_bits(&spiky, 4), 4);
        // The receiver can recover the width from the payload alone.
        let bits = adaptive_bits(&spiky, 8);
        let payload = UniformQuantizer::new(bits).compress(&spiky);
        let q = UniformQuantizer::from_payload(&payload).unwrap();
        assert_eq!(q.bits(), bits);
    }

    #[test]
    fn error_feedback_reconstructs_params_via_decode_upload() {
        let global = vec![0.5f32; 200];
        let params: Vec<f32> = (0..200).map(|i| 0.5 + (i as f32 * 0.13).sin()).collect();
        let policy = Compression::Quantize { bits: 8 };
        let (mut residual, mut update, mut recon) = (Vec::new(), Vec::new(), Vec::new());
        let mut payload = CompressedVec::default();
        ef_compress_update(
            policy,
            &params,
            &global,
            &mut residual,
            &mut update,
            &mut recon,
            &mut payload,
        );
        // Server-side reconstruction = global + decompressed update, and the
        // client's residual is exactly the reconstruction error.
        let mut rebuilt = Vec::new();
        assert!(decode_upload_into(policy, &payload, &global, &mut rebuilt));
        for ((&p, &w), &r) in params.iter().zip(&rebuilt).zip(&residual) {
            assert!((p - w - r).abs() < 1e-5, "{p} {w} {r}");
        }
    }

    #[test]
    fn error_feedback_residual_vanishes_on_constant_updates() {
        // Satellite invariant: a uniform quantizer represents a constant
        // vector exactly, so EF drives the residual to zero.
        let policy = Compression::Quantize { bits: 2 };
        let global = vec![0.0f32; 64];
        let params = vec![0.125f32; 64];
        let (mut residual, mut update, mut recon) = (Vec::new(), Vec::new(), Vec::new());
        let mut payload = CompressedVec::default();
        for round in 0..4 {
            ef_compress_update(
                policy,
                &params,
                &global,
                &mut residual,
                &mut update,
                &mut recon,
                &mut payload,
            );
            let norm: f32 = residual.iter().map(|r| r * r).sum::<f32>().sqrt();
            assert!(norm < 1e-6, "round {round}: residual norm {norm}");
        }
    }

    #[test]
    fn compress_into_matches_compress_for_each_backend() {
        let x: Vec<f32> = (0..257).map(|i| (i as f32 * 0.21).sin()).collect();
        let comps = [
            AnyCompressor::Quantize(UniformQuantizer::new(4)),
            AnyCompressor::TopK(TopK::new(17)),
            AnyCompressor::Sketch(CountSketch::new(5, 31, 3)),
        ];
        let mut payload = CompressedVec::default();
        let mut out = Vec::new();
        for comp in comps {
            let boxed = comp.compress(&x);
            comp.compress_into(&x, &mut payload);
            assert_eq!(boxed.words_u32, payload.words_u32);
            assert_eq!(boxed.words_f32, payload.words_f32);
            assert_eq!(boxed.bytes, payload.bytes);
            let dense = comp.decompress(&payload, x.len());
            comp.decompress_into(&payload, x.len(), &mut out);
            assert_eq!(
                dense.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }
}
