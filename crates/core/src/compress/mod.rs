//! Gradient/model compression — the orthogonal communication-efficiency
//! axis the paper's related work surveys (Konečný et al.'s quantization and
//! sub-sampling, sketching à la FetchSGD).
//!
//! A [`Compressor`] maps a parameter vector to a compact wire form and
//! back. Compressors are *lossy*; the round-trip error is the price paid
//! for fewer bytes. They compose with any algorithm whose uploads are
//! parameter vectors (see the `ext_compression` experiment).

mod quantize;
mod sketch;
mod topk;

pub use quantize::UniformQuantizer;
pub use sketch::CountSketch;
pub use topk::TopK;

/// A lossy vector codec with an accountable wire size.
pub trait Compressor: Send + Sync {
    /// Human-readable name.
    fn name(&self) -> &'static str;

    /// Compresses `values`; returns the wire payload.
    fn compress(&self, values: &[f32]) -> CompressedVec;

    /// Reconstructs a length-`len` vector from a payload.
    fn decompress(&self, payload: &CompressedVec, len: usize) -> Vec<f32>;

    /// Round-trips a vector, returning the reconstruction and its wire cost
    /// in bytes.
    fn round_trip(&self, values: &[f32]) -> (Vec<f32>, usize) {
        let payload = self.compress(values);
        let bytes = payload.wire_bytes();
        (self.decompress(&payload, values.len()), bytes)
    }
}

/// A compressed payload: opaque scalar words plus structural metadata.
/// Wire cost = 4 bytes per `u32` word + 4 bytes per `f32` word + header.
#[derive(Clone, Debug)]
pub struct CompressedVec {
    pub words_u32: Vec<u32>,
    pub words_f32: Vec<f32>,
    /// Payloads that pack sub-word data (e.g. 8-bit quantization codes).
    pub bytes: Vec<u8>,
}

impl CompressedVec {
    /// Total bytes on the wire (header of 12 bytes: three section lengths).
    pub fn wire_bytes(&self) -> usize {
        12 + self.words_u32.len() * 4 + self.words_f32.len() * 4 + self.bytes.len()
    }
}

/// Relative L2 reconstruction error `‖x − x̂‖ / ‖x‖`.
pub fn relative_error(original: &[f32], reconstructed: &[f32]) -> f32 {
    assert_eq!(original.len(), reconstructed.len());
    let num: f32 = original
        .iter()
        .zip(reconstructed)
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    let den: f32 = original.iter().map(|v| v * v).sum();
    if den == 0.0 {
        return if num == 0.0 { 0.0 } else { f32::INFINITY };
    }
    (num / den).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_basics() {
        let x = vec![3.0, 4.0];
        assert_eq!(relative_error(&x, &x), 0.0);
        let y = vec![0.0, 0.0];
        assert!((relative_error(&x, &y) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn wire_bytes_counts_all_sections() {
        let c = CompressedVec {
            words_u32: vec![1, 2],
            words_f32: vec![0.5],
            bytes: vec![0; 10],
        };
        assert_eq!(c.wire_bytes(), 12 + 8 + 4 + 10);
    }
}
