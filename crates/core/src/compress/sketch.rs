//! Count-sketch compression (the FetchSGD family): project the vector into
//! a small sketch with pairwise-independent hash/sign functions; estimate
//! coordinates back by the median of their sketch cells.

use super::{CompressedVec, Compressor};

/// A seeded count sketch with `rows × cols` counters.
#[derive(Clone, Copy, Debug)]
pub struct CountSketch {
    rows: usize,
    cols: usize,
    seed: u64,
}

impl CountSketch {
    /// # Panics
    /// Panics if `rows` is even (median needs an odd count) or zero-sized.
    pub fn new(rows: usize, cols: usize, seed: u64) -> Self {
        assert!(rows > 0 && rows % 2 == 1, "rows must be odd");
        assert!(cols > 0);
        CountSketch { rows, cols, seed }
    }

    #[inline]
    fn hash(&self, row: usize, i: usize) -> (usize, f32) {
        // SplitMix64-style mixing; cheap and adequate for sketching.
        let mut z = (i as u64)
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(row as u64 + 1))
            .wrapping_add(self.seed);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let col = (z % self.cols as u64) as usize;
        let sign = if (z >> 63) & 1 == 1 { 1.0 } else { -1.0 };
        (col, sign)
    }
}

impl Compressor for CountSketch {
    fn name(&self) -> &'static str {
        "count-sketch"
    }

    fn compress(&self, values: &[f32]) -> CompressedVec {
        let mut out = CompressedVec::default();
        self.compress_into(values, &mut out);
        out
    }

    fn decompress(&self, payload: &CompressedVec, len: usize) -> Vec<f32> {
        let mut out = Vec::with_capacity(len);
        self.decompress_into(payload, len, &mut out);
        out
    }

    fn compress_into(&self, values: &[f32], out: &mut CompressedVec) {
        out.words_u32.clear();
        out.bytes.clear();
        out.words_f32.clear();
        out.words_f32.resize(self.rows * self.cols, 0.0);
        for (i, &v) in values.iter().enumerate() {
            for r in 0..self.rows {
                let (c, s) = self.hash(r, i);
                out.words_f32[r * self.cols + c] += s * v;
            }
        }
    }

    fn decompress_into(&self, payload: &CompressedVec, len: usize, out: &mut Vec<f32>) {
        assert_eq!(payload.words_f32.len(), self.rows * self.cols);
        // Median scratch lives on the stack; row counts this large would be
        // absurd for a sketch, so the cap costs nothing in practice.
        const MAX_ROWS: usize = 63;
        assert!(self.rows <= MAX_ROWS, "sketch rows capped at {MAX_ROWS}");
        let table = &payload.words_f32;
        let mut cells = [0.0f32; MAX_ROWS];
        out.clear();
        out.reserve(len);
        for i in 0..len {
            for (r, cell) in cells[..self.rows].iter_mut().enumerate() {
                let (c, s) = self.hash(r, i);
                *cell = s * table[r * self.cols + c];
            }
            cells[..self.rows].sort_by(|a, b| a.total_cmp(b));
            out.push(cells[self.rows / 2]); // median
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::relative_error;

    /// A sparse heavy-hitter vector is recovered well by a modest sketch.
    #[test]
    fn recovers_heavy_hitters() {
        let mut x = vec![0.0f32; 2000];
        x[17] = 50.0;
        x[900] = -30.0;
        x[1500] = 40.0;
        let sk = CountSketch::new(5, 101, 7);
        let (rec, bytes) = sk.round_trip(&x);
        assert!((rec[17] - 50.0).abs() < 5.0, "{}", rec[17]);
        assert!((rec[900] + 30.0).abs() < 5.0);
        assert!((rec[1500] - 40.0).abs() < 5.0);
        assert!(bytes < 2000 * 4 / 3, "sketch must be compact: {bytes}");
    }

    #[test]
    fn bigger_sketch_is_more_accurate() {
        let x: Vec<f32> = (0..500)
            .map(|i| if i % 50 == 0 { 10.0 } else { 0.1 })
            .collect();
        let small = relative_error(&x, &CountSketch::new(3, 31, 1).round_trip(&x).0);
        let big = relative_error(&x, &CountSketch::new(7, 257, 1).round_trip(&x).0);
        assert!(big < small, "{big} vs {small}");
    }

    #[test]
    fn sketch_is_linear() {
        // sketch(a + b) == sketch(a) + sketch(b): the property FetchSGD
        // exploits to aggregate sketches server-side.
        let a: Vec<f32> = (0..100).map(|i| i as f32 * 0.01).collect();
        let b: Vec<f32> = (0..100).map(|i| ((i * 7) % 13) as f32).collect();
        let sum: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let sk = CountSketch::new(3, 17, 9);
        let sa = sk.compress(&a);
        let sb = sk.compress(&b);
        let ssum = sk.compress(&sum);
        for ((x, y), z) in sa.words_f32.iter().zip(&sb.words_f32).zip(&ssum.words_f32) {
            assert!((x + y - z).abs() < 1e-3);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let x = vec![1.0f32, 2.0, 3.0];
        let a = CountSketch::new(3, 7, 5).compress(&x);
        let b = CountSketch::new(3, 7, 5).compress(&x);
        assert_eq!(a.words_f32, b.words_f32);
        let c = CountSketch::new(3, 7, 6).compress(&x);
        assert_ne!(a.words_f32, c.words_f32);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn rejects_even_rows() {
        CountSketch::new(4, 7, 0);
    }
}
