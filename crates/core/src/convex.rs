//! Helpers for validating the convergence theory (Sec. V, Theorems 1–2) on
//! strongly convex objectives.
//!
//! The theorems state that with the decaying step size `η_t = 2/(μ(γ + t))`,
//! `γ = max(8κ, E)`, both rFedAvg and rFedAvg+ converge at `O(1/T)` with a
//! constant that is larger for rFedAvg (`C₃ > C₂`). The
//! `theory_convergence` experiment uses these helpers to (a) run the
//! algorithms under the prescribed schedule and (b) estimate the empirical
//! convergence exponent from the loss curve.

use crate::federation::Federation;

/// The theory's step-size schedule `η_t = 2/(μ(γ + t))` with
/// `γ = max(8κ, E)`, expressed per *round* (the paper's `t` counts gradient
/// steps; we evaluate at round boundaries `t = c·E`).
pub fn theory_schedule(mu: f64, kappa: f64, local_steps: usize) -> impl Fn(usize) -> f32 {
    assert!(mu > 0.0 && kappa >= 1.0);
    let gamma = (8.0 * kappa).max(local_steps as f64);
    move |round| {
        let t = (round * local_steps) as f64;
        (2.0 / (mu * (gamma + t))) as f32
    }
}

/// Weighted global data loss `Σ_k p_k f_k(w_global)` over the *training*
/// data of every client — the `F(w̄_t)` tracked by the theory experiment
/// (the regularizer value is reported separately).
pub fn global_train_loss(fed: &mut Federation) -> f32 {
    let per_client = fed.evaluate_per_client();
    per_client
        .iter()
        .zip(fed.weights())
        .map(|(e, &w)| w * e.loss)
        .sum()
}

/// Least-squares slope of `log(err)` against `log(t)`.
///
/// For an `O(1/t)` rate the slope approaches −1; for `O(1/√t)` it
/// approaches −0.5. Points with non-positive coordinates are skipped.
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|(t, e)| *t > 0.0 && *e > 0.0)
        .map(|&(t, e)| (t.ln(), e.ln()))
        .collect();
    assert!(pts.len() >= 2, "need at least two valid points");
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-12, "degenerate abscissae");
    (n * sxy - sx * sy) / denom
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{FedAvg, RFedAvg, RFedAvgPlus};
    use crate::testutil::convex_fed;
    use crate::trainer::{Algorithm, Trainer};

    #[test]
    fn schedule_decays_as_prescribed() {
        let sched = theory_schedule(0.1, 10.0, 5);
        let eta0 = sched(0);
        let eta10 = sched(10);
        assert!(eta0 > eta10);
        // γ = 80, t = 50 → η = 2/(0.1·130)
        assert!((eta10 - (2.0 / (0.1 * 130.0)) as f32).abs() < 1e-6);
    }

    #[test]
    fn loglog_slope_recovers_known_exponents() {
        let one_over_t: Vec<(f64, f64)> = (1..50).map(|t| (t as f64, 5.0 / t as f64)).collect();
        assert!((loglog_slope(&one_over_t) + 1.0).abs() < 1e-6);
        let one_over_sqrt: Vec<(f64, f64)> = (1..50)
            .map(|t| (t as f64, 2.0 / (t as f64).sqrt()))
            .collect();
        assert!((loglog_slope(&one_over_sqrt) + 0.5).abs() < 1e-6);
    }

    fn excess_loss_curve(algo: &mut dyn Algorithm, seed: u64) -> Vec<(f64, f64)> {
        let (mut fed, cfg) = convex_fed(0.0, seed, 4);
        let mut points = Vec::new();
        let rounds = 40usize;
        let run_cfg = crate::federation::FlConfig {
            rounds: 1,
            eval_every: 1,
            ..cfg
        };
        // η_t = 2/(μ(γ+t)) with μ from the model's L2 plus data curvature —
        // treat μ ≈ 0.5, κ ≈ 4 for this toy problem.
        let sched = theory_schedule(0.5, 4.0, cfg.local_steps);
        for round in 0..rounds {
            for k in 0..fed.num_clients() {
                fed.client_mut(k).set_lr(sched(round));
            }
            Trainer::new(run_cfg).run(algo, &mut fed);
            if round >= 4 {
                points.push(((round + 1) as f64, global_train_loss(&mut fed) as f64));
            }
        }
        points
    }

    #[test]
    fn algorithms_converge_under_theory_schedule() {
        for (name, algo) in [
            ("fedavg", &mut FedAvg::new() as &mut dyn Algorithm),
            ("rfedavg", &mut RFedAvg::new(1e-3)),
            ("rfedavg+", &mut RFedAvgPlus::new(1e-3)),
        ] {
            let pts = excess_loss_curve(algo, 60);
            let first = pts.first().unwrap().1;
            let last = pts.last().unwrap().1;
            assert!(last < first, "{name}: loss {first} → {last} did not drop");
        }
    }
}
