//! Sharded, lazily materialized client registry for cross-device scale.
//!
//! A simulated federation used to hold every client — model replica,
//! dataset shard, scratch buffers — live for the whole run: `O(N·d)` server
//! memory, which at a million registered clients is absurd when only 1% of
//! them participate per round. In lazy mode, a registered client is nothing
//! but a *descriptor*: its id plus the deterministic recipes (federation
//! seed, model/optimizer factories, data source) that rebuild it on demand.
//! The heavyweight objects exist only while the client is **active** in the
//! current round; eviction keeps just the durable
//! [`crate::client::ClientPersist`] (RNG position, epoch-shuffle cursor,
//! optimizer state, flat parameters) in an index-hashed shard map.
//!
//! # Determinism
//!
//! Nothing about a client's state may depend on *when* it is first
//! materialized. Client `k`'s RNG stream is keyed on `(seed, k)` (the same
//! `seed ^ k·φ64` offset [`crate::client::Client::new`] always used — never
//! on construction order), the model's init weights come from the shared
//! federation seed, and a fresh client starts from the *initial* global
//! parameters exactly as an eagerly built one does. Hibernate → wake
//! round-trips bit-exactly, so an eager run and a lazy run of the same
//! federation produce identical losses and parameters (pinned by the
//! `eager ≡ lazy` e2e test).
//!
//! # Sharding
//!
//! Persisted state lives in `thread_budget()` shards behind per-shard
//! mutexes, hashed by client index (`k % shards`). Materialization of a
//! round's selection fans out across the worker budget; each worker only
//! contends on the shard owning its current client, and results land in
//! index-addressed slots so the active set is independent of scheduling.

use crate::client::{Client, ClientPersist};
use crate::federation::{FlConfig, ModelFactory, OptimizerFactory};
use rfl_data::{Dataset, FederatedData};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Deterministic, thread-safe recipe for client datasets. Implementations
/// must return bit-identical datasets for repeated calls with the same `k` —
/// lazy clients regenerate their shard on every wake.
pub trait ClientDataSource: Send + Sync {
    /// Number of registered clients.
    fn num_clients(&self) -> usize;
    /// `n_k` — sample count of client `k`'s shard, *without* materializing
    /// it (aggregation weights for a million clients must stay O(N) ints).
    fn num_samples(&self, k: usize) -> usize;
    /// Materializes client `k`'s dataset.
    fn dataset(&self, k: usize) -> Dataset;
}

/// A [`ClientDataSource`] over pre-materialized datasets (the classic
/// [`FederatedData`] layout) — used to run existing federations in lazy
/// mode and to pin eager ≡ lazy equivalence.
pub struct MaterializedSource {
    clients: Arc<Vec<Dataset>>,
}

impl MaterializedSource {
    pub fn new(clients: Vec<Dataset>) -> Self {
        MaterializedSource {
            clients: Arc::new(clients),
        }
    }

    /// Borrows the client datasets out of a [`FederatedData`] (cloned once;
    /// the test set stays with the caller).
    pub fn from_federated(data: &FederatedData) -> Self {
        MaterializedSource::new(data.clients.clone())
    }
}

impl ClientDataSource for MaterializedSource {
    fn num_clients(&self) -> usize {
        self.clients.len()
    }

    fn num_samples(&self, k: usize) -> usize {
        self.clients[k].len()
    }

    fn dataset(&self, k: usize) -> Dataset {
        self.clients[k].clone()
    }
}

/// The lazy-mode backing store: construction recipes plus the sharded
/// persist map. See the module docs.
pub struct ClientRegistry {
    source: Arc<dyn ClientDataSource>,
    model: ModelFactory,
    optimizer: OptimizerFactory,
    batch_size: usize,
    clip_grad_norm: Option<f32>,
    seed: u64,
    /// The global initialization every client starts from — a client first
    /// sampled in round 40 must begin exactly where an eager replica would
    /// have: at the round-0 global, not the current one (its download
    /// installs the current global only if the link delivers).
    init_global: Vec<f32>,
    /// Latest learning-rate schedule value; applied on materialization so a
    /// woken client matches an eager one (which is overwritten every round).
    /// Interior-mutable: the pipelined engine shares the registry across
    /// prefetch/hibernate worker threads behind an `Arc`.
    pending_lr: Mutex<Option<f32>>,
    shards: Vec<Mutex<HashMap<usize, ClientPersist>>>,
}

impl ClientRegistry {
    pub fn new(
        source: Arc<dyn ClientDataSource>,
        model: ModelFactory,
        optimizer: OptimizerFactory,
        cfg: &FlConfig,
        seed: u64,
        init_global: Vec<f32>,
    ) -> Self {
        let n_shards = rfl_tensor::thread_budget().max(1);
        ClientRegistry {
            source,
            model,
            optimizer,
            batch_size: cfg.batch_size,
            clip_grad_norm: cfg.clip_grad_norm,
            seed,
            init_global,
            pending_lr: Mutex::new(None),
            shards: (0..n_shards).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    pub fn num_clients(&self) -> usize {
        self.source.num_clients()
    }

    pub fn source(&self) -> &Arc<dyn ClientDataSource> {
        &self.source
    }

    /// Records the schedule's current learning rate; every client
    /// materialized from now on gets it applied.
    pub fn set_pending_lr(&self, lr: f32) {
        *self.pending_lr.lock().expect("pending_lr poisoned") = Some(lr);
    }

    /// The learning rate a client materialized right now would receive.
    /// Prefetched clients are stamped again at *consumption* time with the
    /// then-current value, so a schedule step between prefetch and use
    /// cannot leak a stale rate into the round.
    pub fn pending_lr(&self) -> Option<f32> {
        *self.pending_lr.lock().expect("pending_lr poisoned")
    }

    /// Clients currently hibernated (previously sampled, not active).
    pub fn num_persisted(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("registry shard poisoned").len())
            .sum()
    }

    fn shard_of(&self, k: usize) -> usize {
        k % self.shards.len()
    }

    /// Builds the live simulation object for client `k`: either woken from
    /// its persisted state or constructed fresh from the deterministic
    /// recipes. Takes `&self` — materialization of a selection runs on the
    /// worker pool, contending only on the per-shard locks.
    pub fn materialize(&self, k: usize) -> Client {
        let persist = self.shards[self.shard_of(k)]
            .lock()
            .expect("registry shard poisoned")
            .remove(&k);
        let mut model = self.model.build(self.seed);
        let data = self.source.dataset(k);
        let mut client = match persist {
            Some(p) => Client::wake(k, model, data, p, self.clip_grad_norm),
            None => {
                model.write_params(&self.init_global);
                let mut c = Client::new(
                    k,
                    model,
                    data,
                    self.optimizer.build(),
                    self.batch_size,
                    self.seed,
                );
                c.set_clip_grad_norm(self.clip_grad_norm);
                c
            }
        };
        if let Some(lr) = self.pending_lr() {
            client.set_lr(lr);
        }
        client
    }

    /// Evicts a client, keeping only its durable state.
    pub fn hibernate(&self, client: Client) {
        let k = client.id();
        self.shards[self.shard_of(k)]
            .lock()
            .expect("registry shard poisoned")
            .insert(k, client.hibernate());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::LocalRule;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfl_data::synth::gaussian::GaussianMixtureSpec;

    fn source(n_clients: usize, seed: u64) -> (MaterializedSource, Dataset) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = GaussianMixtureSpec::default_spec();
        let pool = spec.generate(20 * n_clients, None, &mut rng);
        let parts = rfl_data::partition::iid(20 * n_clients, n_clients, &mut rng);
        let test = spec.generate(20, None, &mut rng);
        let data = FederatedData::from_partition(&pool, &parts, test);
        (MaterializedSource::from_federated(&data), data.test.clone())
    }

    fn registry(seed: u64) -> ClientRegistry {
        let (src, _) = source(4, seed);
        let model = ModelFactory::logistic(10, 4, 0.0);
        let init = model.build(seed);
        let mut init_global = Vec::new();
        init.read_params(&mut init_global);
        let mut cfg = FlConfig::cross_silo();
        cfg.batch_size = 5;
        ClientRegistry::new(
            Arc::new(src),
            model,
            OptimizerFactory::sgd(0.1),
            &cfg,
            seed,
            init_global,
        )
    }

    #[test]
    fn materialization_order_does_not_change_clients() {
        let reg_a = registry(3);
        let reg_b = registry(3);
        // Build in opposite orders; every client must be bit-identical.
        let mut a: Vec<Client> = (0..4).map(|k| reg_a.materialize(k)).collect();
        let mut b: Vec<Client> = (0..4).rev().map(|k| reg_b.materialize(k)).collect();
        b.reverse();
        for (ca, cb) in a.iter_mut().zip(b.iter_mut()) {
            let ra = ca.train_local(3, &LocalRule::Plain);
            let rb = cb.train_local(3, &LocalRule::Plain);
            assert_eq!(ra.loss, rb.loss, "client {} diverged", ca.id());
        }
    }

    #[test]
    fn hibernate_then_materialize_resumes_training() {
        // Two identical registries: one client stays live, its twin is
        // evicted and revived mid-run; both must train bit-identically.
        let reg = registry(5);
        let reg2 = registry(5);
        let mut live = reg.materialize(2);
        let mut cycled = reg2.materialize(2);

        live.train_local(2, &LocalRule::Plain);
        cycled.train_local(2, &LocalRule::Plain);
        reg2.hibernate(cycled);
        assert_eq!(reg2.num_persisted(), 1);
        let mut cycled = reg2.materialize(2);
        assert_eq!(reg2.num_persisted(), 0);
        let ra = live.train_local(4, &LocalRule::Plain);
        let rb = cycled.train_local(4, &LocalRule::Plain);
        assert_eq!(ra.loss, rb.loss);
        let (mut wa, mut wb) = (Vec::new(), Vec::new());
        live.read_params(&mut wa);
        cycled.read_params(&mut wb);
        assert_eq!(wa, wb);
    }

    #[test]
    fn fresh_clients_start_at_the_initial_global() {
        let reg = registry(7);
        let c = reg.materialize(3);
        let mut params = Vec::new();
        c.read_params(&mut params);
        assert_eq!(params, reg.init_global);
    }

    #[test]
    fn pending_lr_is_applied_on_materialization() {
        let reg = registry(9);
        reg.set_pending_lr(0.025);
        let fresh = reg.materialize(0);
        assert_eq!(fresh.lr(), 0.025);
        reg.hibernate(fresh);
        reg.set_pending_lr(0.0125);
        let woken = reg.materialize(0);
        assert_eq!(woken.lr(), 0.0125);
    }
}
