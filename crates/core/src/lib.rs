//! # rfl-core
//!
//! Federated-learning framework and the algorithms of *Distribution-
//! Regularized Federated Learning on Non-IID Data* (ICDE 2023).
//!
//! The crate simulates a synchronous FL system: a [`Federation`] of clients
//! (each with a private [`rfl_data::Dataset`], its own model replica, local
//! optimizer state, and seeded RNG), a flat-parameter server, and a
//! byte-accurate [`comm::Transport`] carrying typed message envelopes
//! ([`comm::MsgKind`]). Two backends ship: [`comm::PerfectTransport`]
//! (every message delivered, the default) and [`comm::FaultyTransport`]
//! (seeded per-link drops, a latency model, bounded retries, and a
//! per-round deadline that turns slow clients into dropouts).
//!
//! ## Algorithms
//!
//! | Algorithm | Paper | Key mechanism |
//! |---|---|---|
//! | [`algorithms::FedAvg`] | McMahan et al. | local SGD + weighted averaging |
//! | [`algorithms::FedProx`] | Li et al. | proximal term `μ‖w − w_global‖²/2` |
//! | [`algorithms::Scaffold`] | Karimireddy et al. | control variates `c, c_k` |
//! | [`algorithms::QFedAvg`] | Li et al. | q-fair aggregation |
//! | [`algorithms::RFedAvg`] | **this paper, Alg. 1** | delayed per-client δ maps, `O(dN²)` broadcast |
//! | [`algorithms::RFedAvgPlus`] | **this paper, Alg. 2** | double sync + averaged δ, `O(dN)` broadcast |
//!
//! ## The distribution regularizer
//!
//! [`mmd`] implements the empirical (linear-kernel) maximum mean discrepancy
//! between clients' mean feature embeddings `δ_k = (1/n_k) Σ φ(x)`. During
//! local SGD the regularizer's gradient `2λ(μ_B − δ_target)/B` is injected
//! at the feature layer through the model's feature hook (Eq. 3–5).
//!
//! ```
//! use rfl_core::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let data = rfl_data::synth::gaussian::GaussianMixtureSpec::default_spec();
//! let pool = data.generate(120, None, &mut rng);
//! let parts = rfl_data::partition::similarity(pool.labels(), 4, 0.0, &mut rng);
//! let test = data.generate(40, None, &mut rng);
//! let fed_data = rfl_data::FederatedData::from_partition(&pool, &parts, test);
//!
//! let cfg = FlConfig { rounds: 3, ..FlConfig::cross_silo() };
//! let factory = ModelFactory::logistic(10, 4, 1e-3);
//! let mut fed = Federation::new(&fed_data, factory, OptimizerFactory::sgd(0.1), &cfg, 7);
//! let mut algo = RFedAvgPlus::new(1e-2);
//! let history = Trainer::new(cfg).run(&mut algo, &mut fed);
//! assert_eq!(history.len(), 3);
//! ```

pub mod aggregate;
pub mod algorithms;
pub mod canonical;
pub mod client;
pub mod comm;
pub mod compress;
pub mod convex;
pub mod delta;
pub mod dp;
pub mod eval;
pub mod federation;
pub mod history;
pub mod mem;
pub mod mmd;
pub mod mmd_rbf;
pub mod personalization;
pub mod registry;
pub mod rules;
pub mod sampling;
pub mod secagg;
#[cfg(test)]
pub(crate) mod testutil;
pub mod trainer;

pub use aggregate::StreamingAggregator;
pub use client::Client;
pub use comm::{
    FaultConfig, FaultStats, FaultyTransport, LatencyModel, MsgKind, PerfectTransport, Transport,
};
pub use federation::{Federation, FlConfig, ModelFactory, OptimizerFactory, StragglerModel};
pub use history::{History, RoundRecord};
pub use registry::{ClientDataSource, ClientRegistry, MaterializedSource};
pub use rules::LocalRule;
pub use trainer::{Algorithm, RoundOutcome, Trainer};

/// Convenient glob import for examples and binaries.
pub mod prelude {
    pub use crate::algorithms::{
        FedAvg, FedAvgM, FedPer, FedProx, PowerOfChoice, QFedAvg, RFedAvg, RFedAvgPlus, Scaffold,
    };
    pub use crate::client::Client;
    pub use crate::comm::{
        CommStats, FaultConfig, FaultStats, FaultyTransport, LatencyModel, MsgKind,
        PerfectTransport, Transport,
    };
    pub use crate::federation::{
        Federation, FlConfig, ModelFactory, OptimizerFactory, StragglerModel,
    };
    pub use crate::history::{History, RoundRecord};
    pub use crate::trainer::{Algorithm, Trainer};
}
