//! Secure aggregation via pairwise additive masking (Bonawitz et al., CCS
//! 2017, simplified): each pair of clients (i, j) derives a shared mask
//! from a common seed; client i adds it, client j subtracts it, so the
//! masks cancel in the server's sum and the server never sees an individual
//! update in the clear.
//!
//! This is the mechanism that would protect the *model* plane in a
//! production deployment of rFedAvg+; the δ plane is protected by the
//! Gaussian mechanism in [`crate::dp`]. The simulation here demonstrates
//! exact cancellation and per-client opacity (no dropout-recovery protocol
//! — the paper's setting assumes synchronous participation).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rfl_tensor::normal_sample;

/// Derives the pairwise mask seed for clients `i < j`.
fn pair_seed(session: u64, i: usize, j: usize) -> u64 {
    debug_assert!(i < j);
    session ^ ((i as u64) << 32 | j as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Generates the shared mask vector for a client pair.
fn pair_mask(session: u64, i: usize, j: usize, len: usize, scale: f32) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(pair_seed(session, i, j));
    (0..len).map(|_| scale * normal_sample(&mut rng)).collect()
}

/// Masks client `k`'s update given the participating set.
///
/// For every peer `j`: add the pair mask if `k < j`, subtract it if `k > j`.
/// `scale` controls mask magnitude (large enough to hide the payload).
pub fn mask_update(
    update: &[f32],
    k: usize,
    participants: &[usize],
    session: u64,
    scale: f32,
) -> Vec<f32> {
    let mut masked = update.to_vec();
    for &j in participants {
        if j == k {
            continue;
        }
        let (lo, hi) = (k.min(j), k.max(j));
        let mask = pair_mask(session, lo, hi, update.len(), scale);
        let sign = if k < j { 1.0 } else { -1.0 };
        for (m, v) in masked.iter_mut().zip(&mask) {
            *m += sign * v;
        }
    }
    masked
}

/// Sums masked updates (what the server computes). With all participants
/// present the pairwise masks cancel exactly and the result equals the sum
/// of the plaintext updates.
pub fn aggregate_masked(masked_updates: &[Vec<f32>]) -> Vec<f32> {
    assert!(!masked_updates.is_empty());
    let len = masked_updates[0].len();
    let mut sum = vec![0.0f32; len];
    for u in masked_updates {
        assert_eq!(u.len(), len);
        for (s, v) in sum.iter_mut().zip(u) {
            *s += v;
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn updates(n: usize, len: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|k| {
                (0..len)
                    .map(|i| (k * len + i) as f32 * 0.01 - 0.3)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn masks_cancel_in_the_sum() {
        let parts: Vec<usize> = vec![0, 1, 2, 3];
        let ups = updates(4, 32);
        let masked: Vec<Vec<f32>> = ups
            .iter()
            .enumerate()
            .map(|(k, u)| mask_update(u, k, &parts, 99, 100.0))
            .collect();
        let agg = aggregate_masked(&masked);
        let plain = aggregate_masked(&ups);
        for (a, b) in agg.iter().zip(&plain) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn individual_updates_are_hidden() {
        let parts: Vec<usize> = vec![0, 1, 2];
        let ups = updates(3, 16);
        let masked = mask_update(&ups[0], 0, &parts, 5, 100.0);
        // The masked update must be far from the plaintext (mask scale 100
        // vs payload scale < 1).
        let dist: f32 = masked
            .iter()
            .zip(&ups[0])
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        assert!(dist.sqrt() > 10.0, "mask too weak: {}", dist.sqrt());
    }

    #[test]
    fn two_clients_cancel_exactly() {
        let parts = vec![4, 9];
        let a = vec![1.0f32, -2.0];
        let b = vec![0.5f32, 0.5];
        let ma = mask_update(&a, 4, &parts, 1, 50.0);
        let mb = mask_update(&b, 9, &parts, 1, 50.0);
        let agg = aggregate_masked(&[ma, mb]);
        assert!((agg[0] - 1.5).abs() < 1e-3);
        assert!((agg[1] + 1.5).abs() < 1e-3);
    }

    #[test]
    fn different_sessions_produce_different_masks() {
        let parts = vec![0, 1];
        let u = vec![0.0f32; 8];
        let m1 = mask_update(&u, 0, &parts, 1, 10.0);
        let m2 = mask_update(&u, 0, &parts, 2, 10.0);
        assert_ne!(m1, m2);
    }

    #[test]
    fn missing_participant_breaks_cancellation() {
        // Dropout without recovery leaves residual masks — documents the
        // simplification vs the full Bonawitz protocol.
        let parts = vec![0, 1, 2];
        let ups = updates(3, 8);
        let masked: Vec<Vec<f32>> = ups
            .iter()
            .enumerate()
            .map(|(k, u)| mask_update(u, k, &parts, 3, 100.0))
            .collect();
        let agg = aggregate_masked(&masked[..2]); // client 2 dropped
        let plain = aggregate_masked(&ups[..2]);
        let residual: f32 = agg.iter().zip(&plain).map(|(a, b)| (a - b).abs()).sum();
        assert!(residual > 1.0, "expected residual masks, got {residual}");
    }
}
