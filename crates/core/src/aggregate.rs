//! Streaming O(d) aggregation as a fixed-shape reduction tree: every
//! arriving upload is folded into its **leaf** the moment it arrives, and
//! the leaves are combined along a spine whose shape depends only on the
//! selection — never on arrival order or thread count.
//!
//! The server's old path was materialize-then-average:
//! [`crate::Federation::collect_params`] buffered `O(sampled·d)` floats and
//! [`crate::Federation::weighted_average`] re-walked the whole set. With a
//! million registered clients and 1% sampling that is 10,000 live parameter
//! vectors held simultaneously. The [`StreamingAggregator`] replaces the
//! buffer with one flat `d`-float accumulator plus a folded-weight scalar.
//!
//! # The reduction tree
//!
//! The aggregate `Σ wᵢ·θᵢ` is evaluated as a binary tree fixed by the
//! selection slots:
//!
//! - **Leaves** are `fl(wᵢ·θᵢ)`, computed eagerly when slot `i`'s upload
//!   arrives ([`rfl_tensor::scale_slices_into`] into a pooled buffer). Leaf
//!   evaluation is embarrassingly parallel and order-free — an upload
//!   arriving ahead of a lower, still-pending slot does its multiply work
//!   immediately instead of parking raw bytes in a `BTreeMap` and re-reading
//!   them later. Out-of-order arrivals therefore never block: by the time
//!   the spine reaches a stashed slot, its scaling work is already done.
//! - **Interior nodes** form a left comb: `acc ← acc + leafᵢ` in slot
//!   order ([`rfl_tensor::add_assign_slices`]). A left comb is the one tree
//!   shape whose per-element operation sequence is *identical* to the flat
//!   sequential fold `zeros; acc += w₀·θ₀; acc += w₁·θ₁; …`, which is what
//!   keeps the result bit-identical to the retained
//!   [`crate::Federation::weighted_average`] oracle (f32 addition is not
//!   associative, so any balanced shape would change the pinned losses).
//!
//! In-order arrivals skip the explicit leaf and fold straight into the spine
//! with [`rfl_tensor::axpy_slices`] — bit-equal, because axpy performs the
//! same separate multiply-then-add per element that `scale_into` +
//! `add_assign` performs in two passes (no FMA contraction on either path;
//! see the `rfl_tensor::simd` determinism contract).
//!
//! # Parallelism
//!
//! Both the leaf scaling and the spine combines are element-wise, so for
//! large `d` they are chunked across the shared worker pool
//! ([`rfl_tensor::parallel_for_chunks`]). Each chunk owns a disjoint region
//! of the output and the per-element order within a chunk is fixed, so the
//! result is bit-identical at any `RFL_THREADS` value.
//!
//! # Determinism
//!
//! PerfectTransport, FaultyTransport, and SocketTransport runs — where
//! frames genuinely complete out of order — all execute the identical
//! per-element operation sequence, so the canonical pinned loss reproduces
//! bit-exactly over the wire.
//!
//! # Bit-compatibility with the oracle
//!
//! The weights handed to the aggregator are prenormalized over the *whole
//! selection* ([`crate::sampling::renormalized_weights`]). When every
//! selected upload arrives (the common, pinned case) the fold sequence is
//! exactly `zeros; axpy(w_0, θ_0); axpy(w_1, θ_1); …` — bit-identical to
//! `weighted_average(params, renormalized_weights(..))`, which stays in the
//! codebase as the oracle. When uploads drop, the accumulator is rescaled
//! once by `1/Σ(folded weights)` — the same renormalize-over-survivors
//! semantics, applied as a single deterministic correction instead of a
//! re-walk of buffered vectors.

/// Dimension at which element-wise tree ops start chunking across the worker
/// pool; below this the dispatch overhead exceeds the win.
const PAR_MIN_DIM: usize = 1 << 16;
/// Chunk length of the pool-parallel grid (fixed, so the grid depends only
/// on `d` — never on the thread budget).
const PAR_CHUNK: usize = 1 << 14;

/// `y += a·x`, chunked across the pool for large `d`. Element-wise, so
/// bit-identical to the single-threaded [`rfl_tensor::axpy_slices`].
fn axpy_par(y: &mut [f32], a: f32, x: &[f32]) {
    if y.len() < PAR_MIN_DIM {
        rfl_tensor::axpy_slices(y, a, x);
    } else {
        rfl_tensor::parallel_for_chunks(y, PAR_CHUNK, |i, chunk| {
            let s = i * PAR_CHUNK;
            rfl_tensor::axpy_slices(chunk, a, &x[s..s + chunk.len()]);
        });
    }
}

/// `y += x`, chunked like [`axpy_par`].
fn add_assign_par(y: &mut [f32], x: &[f32]) {
    if y.len() < PAR_MIN_DIM {
        rfl_tensor::add_assign_slices(y, x);
    } else {
        rfl_tensor::parallel_for_chunks(y, PAR_CHUNK, |i, chunk| {
            let s = i * PAR_CHUNK;
            rfl_tensor::add_assign_slices(chunk, &x[s..s + chunk.len()]);
        });
    }
}

/// `out = a·x`, chunked like [`axpy_par`].
fn scale_into_par(out: &mut [f32], a: f32, x: &[f32]) {
    if out.len() < PAR_MIN_DIM {
        rfl_tensor::scale_slices_into(out, a, x);
    } else {
        rfl_tensor::parallel_for_chunks(out, PAR_CHUNK, |i, chunk| {
            let s = i * PAR_CHUNK;
            rfl_tensor::scale_slices_into(chunk, a, &x[s..s + chunk.len()]);
        });
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SlotState {
    /// Not yet arrived and not known-dropped.
    Pending,
    /// Arrived out of order; its leaf `fl(w·θ)` is already computed.
    Leafed,
    /// Combined into the spine accumulator.
    Folded,
    /// The transport reported the upload lost; the slot will never arrive.
    Dropped,
}

/// Fold-on-arrival weighted-average accumulator built as a fixed-shape
/// reduction tree. See the module docs.
///
/// All buffers (accumulator, weights, slot states, leaf pool) are retained
/// across [`StreamingAggregator::reset_for_selection`] calls, so a
/// federation that keeps one aggregator per run performs zero steady-state
/// allocations per round on the no-drop path.
#[derive(Debug, Default)]
pub struct StreamingAggregator {
    dim: usize,
    acc: Vec<f32>,
    /// Per-slot weights, prenormalized over the selection.
    weights: Vec<f32>,
    state: Vec<SlotState>,
    /// Scaled leaves of out-of-order arrivals, indexed by slot. `None` for
    /// slots that folded straight into the spine. Empty on in-order paths.
    leaves: Vec<Option<Vec<f32>>>,
    /// Recycled leaf buffers (bounded by the worst observed reorder depth).
    pool: Vec<Vec<f32>>,
    /// Lowest slot not yet folded or skipped.
    next_slot: usize,
    folded: usize,
    resolved: usize,
    /// Σ weights of folded slots, accumulated in fold (slot) order.
    folded_weight: f32,
    /// Donated buffer (e.g. the previous global) reused as the next `acc`.
    spare: Option<Vec<f32>>,
}

impl StreamingAggregator {
    /// A fresh aggregator for one round: `dim`-float accumulator, one
    /// prenormalized weight per selection slot.
    pub fn new(dim: usize, weights: Vec<f32>) -> Self {
        let mut agg = StreamingAggregator {
            weights,
            ..StreamingAggregator::default()
        };
        agg.rearm(dim);
        agg
    }

    /// Re-arms the aggregator for a new round over `selected`, computing the
    /// prenormalized weights in place (bit-identical to
    /// [`crate::sampling::renormalized_weights`]) and reusing every buffer.
    pub fn reset_for_selection(&mut self, dim: usize, all_weights: &[f32], selected: &[usize]) {
        let total: f32 = selected.iter().map(|&k| all_weights[k]).sum();
        assert!(total > 0.0, "selected clients have zero total weight");
        self.weights.clear();
        self.weights
            .extend(selected.iter().map(|&k| all_weights[k] / total));
        self.rearm(dim);
    }

    /// Zeroes the accumulator (recycling a donated buffer when the current
    /// one was taken by `finish`), returns stale leaves to the pool, and
    /// resets all per-round state; the weight vector is left as-is.
    fn rearm(&mut self, dim: usize) {
        self.dim = dim;
        if self.acc.is_empty() {
            if let Some(spare) = self.spare.take() {
                self.acc = spare;
            }
        }
        self.acc.clear();
        self.acc.resize(dim, 0.0);
        self.state.clear();
        self.state.resize(self.weights.len(), SlotState::Pending);
        for leaf in self.leaves.iter_mut() {
            if let Some(buf) = leaf.take() {
                self.pool.push(buf);
            }
        }
        self.leaves.clear();
        self.leaves.resize_with(self.weights.len(), || None);
        self.next_slot = 0;
        self.folded = 0;
        self.resolved = 0;
        self.folded_weight = 0.0;
    }

    /// Number of slots in the selection.
    pub fn expected(&self) -> usize {
        self.state.len()
    }

    /// Uploads folded so far.
    pub fn folded(&self) -> usize {
        self.folded
    }

    /// Advances the spine: combines ready leaves and skips dropped slots
    /// until the next still-pending slot.
    fn drain(&mut self) {
        while self.next_slot < self.state.len() {
            match self.state[self.next_slot] {
                SlotState::Pending => break,
                SlotState::Dropped | SlotState::Folded => self.next_slot += 1,
                SlotState::Leafed => {
                    let slot = self.next_slot;
                    let leaf = self.leaves[slot].take().expect("leaf payload missing");
                    add_assign_par(&mut self.acc, &leaf);
                    self.folded_weight += self.weights[slot];
                    self.folded += 1;
                    self.pool.push(leaf);
                    self.state[slot] = SlotState::Folded;
                    self.next_slot += 1;
                }
            }
        }
    }

    /// Accepts the upload for `slot`. In-order arrivals combine straight
    /// into the spine; out-of-order arrivals compute their leaf `fl(w·θ)`
    /// immediately and are combined once every earlier slot resolves.
    pub fn push(&mut self, slot: usize, params: &[f32]) {
        assert!(slot < self.state.len(), "slot {slot} out of range");
        assert_eq!(
            self.state[slot],
            SlotState::Pending,
            "slot {slot} resolved twice"
        );
        assert_eq!(params.len(), self.dim, "upload dim mismatch at slot {slot}");
        self.resolved += 1;
        let w = self.weights[slot];
        if slot == self.next_slot {
            // Spine fast path: one fused pass (axpy ≡ leaf + combine bitwise).
            axpy_par(&mut self.acc, w, params);
            self.folded_weight += w;
            self.folded += 1;
            self.state[slot] = SlotState::Folded;
            self.next_slot += 1;
            self.drain();
        } else {
            let mut leaf = self.pool.pop().unwrap_or_default();
            leaf.clear();
            leaf.resize(self.dim, 0.0);
            scale_into_par(&mut leaf, w, params);
            self.leaves[slot] = Some(leaf);
            self.state[slot] = SlotState::Leafed;
        }
    }

    /// Records that `slot`'s upload was lost in transit, unblocking any
    /// leafed later arrivals.
    pub fn mark_dropped(&mut self, slot: usize) {
        assert!(slot < self.state.len(), "slot {slot} out of range");
        assert_eq!(
            self.state[slot],
            SlotState::Pending,
            "slot {slot} resolved twice"
        );
        self.resolved += 1;
        self.state[slot] = SlotState::Dropped;
        if slot == self.next_slot {
            self.drain();
        }
    }

    /// Finishes the round and returns the aggregate, or `None` when every
    /// upload dropped (the round leaves the global untouched, matching the
    /// empty-delivery guards in the algorithms). With partial delivery the
    /// accumulator is rescaled once by `1/Σ(folded weights)` —
    /// renormalization over the survivors.
    ///
    /// # Panics
    /// Panics if any slot is still unresolved (neither arrived nor marked
    /// dropped) — the caller must account for every selected client.
    pub fn finish(&mut self) -> Option<Vec<f32>> {
        assert_eq!(
            self.resolved,
            self.state.len(),
            "finish() with unresolved slots"
        );
        debug_assert!(self.leaves.iter().all(Option::is_none));
        if self.folded == 0 {
            return None;
        }
        let mut acc = std::mem::take(&mut self.acc);
        if self.folded < self.state.len() {
            assert!(
                self.folded_weight > 0.0,
                "surviving uploads have zero total weight"
            );
            rfl_tensor::scale_slices(&mut acc, 1.0 / self.folded_weight);
        }
        Some(acc)
    }

    /// Donates a spent `d`-float buffer (typically the previous global
    /// parameters) to be recycled as the next round's accumulator.
    pub fn donate(&mut self, buf: Vec<f32>) {
        if self
            .spare
            .as_ref()
            .is_none_or(|s| s.capacity() < buf.capacity())
        {
            self.spare = Some(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::renormalized_weights;
    use crate::Federation;

    fn params(n: usize, d: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| (0..d).map(|j| (i * d + j) as f32 * 0.37 - 1.5).collect())
            .collect()
    }

    #[test]
    fn in_order_fold_matches_weighted_average_bitwise() {
        let p = params(5, 17);
        let w = renormalized_weights(&[0.2, 0.1, 0.4, 0.05, 0.25], &[0, 1, 2, 3, 4]);
        let mut agg = StreamingAggregator::new(17, w.clone());
        for (slot, pi) in p.iter().enumerate() {
            agg.push(slot, pi);
        }
        let got = agg.finish().unwrap();
        assert_eq!(got, Federation::weighted_average(&p, &w));
    }

    #[test]
    fn arrival_order_is_irrelevant() {
        let p = params(6, 9);
        let w = vec![0.3, 0.1, 0.15, 0.2, 0.05, 0.2];
        let mut in_order = StreamingAggregator::new(9, w.clone());
        for (slot, pi) in p.iter().enumerate() {
            in_order.push(slot, pi);
        }
        let want = in_order.finish().unwrap();
        for perm in [[5, 0, 3, 1, 4, 2], [2, 1, 0, 5, 4, 3], [0, 5, 1, 4, 2, 3]] {
            let mut agg = StreamingAggregator::new(9, w.clone());
            for &slot in &perm {
                agg.push(slot, &p[slot]);
            }
            assert_eq!(agg.finish().unwrap(), want, "perm {perm:?}");
        }
    }

    #[test]
    fn pool_parallel_dims_match_the_oracle_in_any_arrival_order() {
        // Above PAR_MIN_DIM the leaf/spine ops chunk across the worker
        // pool; the result must still be bit-identical to the sequential
        // oracle, in order and fully reversed.
        let d = PAR_MIN_DIM + 3;
        let p = params(3, d);
        let w = renormalized_weights(&[0.5, 0.2, 0.3], &[0, 1, 2]);
        let want = Federation::weighted_average(&p, &w);
        for order in [[0usize, 1, 2], [2, 1, 0]] {
            let mut agg = StreamingAggregator::new(d, w.clone());
            for &slot in &order {
                agg.push(slot, &p[slot]);
            }
            assert_eq!(agg.finish().unwrap(), want, "order {order:?}");
        }
    }

    #[test]
    fn drops_renormalize_over_survivors() {
        let p = params(4, 5);
        let w = vec![0.4, 0.1, 0.3, 0.2];
        let mut agg = StreamingAggregator::new(5, w.clone());
        agg.push(0, &p[0]);
        agg.mark_dropped(1);
        agg.push(2, &p[2]);
        agg.mark_dropped(3);
        let got = agg.finish().unwrap();
        // Oracle: fold survivors in slot order, then one rescale.
        let mut want = vec![0.0f32; 5];
        rfl_tensor::axpy_slices(&mut want, w[0], &p[0]);
        rfl_tensor::axpy_slices(&mut want, w[2], &p[2]);
        rfl_tensor::scale_slices(&mut want, 1.0 / (w[0] + w[2]));
        assert_eq!(got, want);
    }

    #[test]
    fn late_drop_unblocks_leafed_arrivals() {
        let p = params(3, 4);
        let w = vec![0.5, 0.25, 0.25];
        let mut agg = StreamingAggregator::new(4, w.clone());
        agg.push(2, &p[2]); // leafed: slots 0 and 1 unresolved
        agg.push(0, &p[0]); // folds 0; 2 still blocked behind 1
        assert_eq!(agg.folded(), 1);
        agg.mark_dropped(1); // unblocks 2
        assert_eq!(agg.folded(), 2);
        let got = agg.finish().unwrap();
        let mut want = vec![0.0f32; 4];
        rfl_tensor::axpy_slices(&mut want, w[0], &p[0]);
        rfl_tensor::axpy_slices(&mut want, w[2], &p[2]);
        rfl_tensor::scale_slices(&mut want, 1.0 / (w[0] + w[2]));
        assert_eq!(got, want);
    }

    #[test]
    fn all_dropped_returns_none() {
        let mut agg = StreamingAggregator::new(3, vec![0.5, 0.5]);
        agg.mark_dropped(0);
        agg.mark_dropped(1);
        assert!(agg.finish().is_none());
    }

    #[test]
    fn single_survivor_recovers_its_params_up_to_rescale() {
        let p = params(3, 6);
        let w = vec![0.25, 0.5, 0.25];
        let mut agg = StreamingAggregator::new(6, w.clone());
        agg.mark_dropped(0);
        agg.push(1, &p[1]);
        agg.mark_dropped(2);
        let got = agg.finish().unwrap();
        for (g, x) in got.iter().zip(&p[1]) {
            assert!((g - x).abs() <= x.abs() * 1e-6 + 1e-6, "{g} vs {x}");
        }
    }

    #[test]
    fn reset_reuses_buffers_and_matches_fresh() {
        let all_w = vec![0.1f32, 0.2, 0.3, 0.4];
        let sel = vec![0usize, 2, 3];
        let p = params(3, 8);
        let run = |agg: &mut StreamingAggregator| {
            agg.reset_for_selection(8, &all_w, &sel);
            for (slot, pi) in p.iter().enumerate() {
                agg.push(slot, pi);
            }
            agg.finish().unwrap()
        };
        let mut agg = StreamingAggregator::default();
        let first = run(&mut agg);
        agg.donate(first.clone());
        let second = run(&mut agg);
        assert_eq!(first, second);
        assert_eq!(
            first,
            Federation::weighted_average(&p, &renormalized_weights(&all_w, &sel))
        );
    }

    #[test]
    fn leaf_pool_recycles_across_rounds() {
        let all_w = vec![0.25f32; 4];
        let sel = vec![0usize, 1, 2, 3];
        let p = params(4, 16);
        let mut agg = StreamingAggregator::default();
        let mut prev = None;
        for _ in 0..3 {
            agg.reset_for_selection(16, &all_w, &sel);
            // Fully reversed arrival: every slot but the last goes through
            // a leaf buffer, exercising pool reuse on later rounds.
            for slot in (0..4).rev() {
                agg.push(slot, &p[slot]);
            }
            let got = agg.finish().unwrap();
            if let Some(prev) = &prev {
                assert_eq!(&got, prev);
            }
            prev = Some(got);
        }
    }

    #[test]
    #[should_panic(expected = "resolved twice")]
    fn double_push_panics() {
        let p = params(2, 2);
        let mut agg = StreamingAggregator::new(2, vec![0.5, 0.5]);
        agg.push(0, &p[0]);
        agg.push(0, &p[0]);
    }

    #[test]
    #[should_panic(expected = "unresolved slots")]
    fn finish_with_pending_slot_panics() {
        let mut agg = StreamingAggregator::new(2, vec![0.5, 0.5]);
        agg.push(0, &[1.0, 2.0]);
        let _ = agg.finish();
    }
}
