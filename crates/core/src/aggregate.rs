//! Streaming O(d) aggregation: fold each arriving upload into a fixed
//! running-sum accumulator instead of materializing every sampled client's
//! parameter vector and averaging at the end.
//!
//! The server's old path was materialize-then-average:
//! [`crate::Federation::collect_params`] buffered `O(sampled·d)` floats and
//! [`crate::Federation::weighted_average`] re-walked the whole set. With a
//! million registered clients and 1% sampling that is 10,000 live parameter
//! vectors held simultaneously. The [`StreamingAggregator`] replaces the
//! buffer with one flat `d`-float accumulator plus a folded-weight scalar:
//! each upload is folded with [`rfl_tensor::axpy_slices`] the moment it
//! arrives and its payload is dropped.
//!
//! # Determinism
//!
//! Floating-point addition does not commute, so fold order is part of the
//! result. The aggregator therefore folds uploads in **selection-index
//! order** (`slot` = the client's index within the round's selection)
//! regardless of arrival order: an upload arriving ahead of a lower,
//! still-pending slot is stashed and folded only once every earlier slot has
//! either arrived or been marked dropped. PerfectTransport,
//! FaultyTransport, and SocketTransport runs — where frames genuinely
//! complete out of order — all execute the identical axpy sequence, so the
//! canonical pinned loss reproduces bit-exactly over the wire.
//!
//! # Bit-compatibility with the oracle
//!
//! The weights handed to the aggregator are prenormalized over the *whole
//! selection* ([`crate::sampling::renormalized_weights`]). When every
//! selected upload arrives (the common, pinned case) the fold sequence is
//! exactly `zeros; axpy(w_0, θ_0); axpy(w_1, θ_1); …` — bit-identical to
//! `weighted_average(params, renormalized_weights(..))`, which stays in the
//! codebase as the oracle. When uploads drop, the accumulator is rescaled
//! once by `1/Σ(folded weights)` — the same renormalize-over-survivors
//! semantics, applied as a single deterministic correction instead of a
//! re-walk of buffered vectors.

use std::collections::BTreeMap;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SlotState {
    /// Not yet arrived and not known-dropped.
    Pending,
    /// Arrived out of order; payload parked in the stash.
    Stashed,
    /// Folded into the accumulator.
    Folded,
    /// The transport reported the upload lost; the slot will never arrive.
    Dropped,
}

/// Fold-on-arrival weighted-average accumulator. See the module docs.
///
/// All buffers (accumulator, weights, slot states) are retained across
/// [`StreamingAggregator::reset_for_selection`] calls, so a federation that
/// keeps one aggregator per run performs zero steady-state allocations per
/// round on the no-drop path.
#[derive(Debug, Default)]
pub struct StreamingAggregator {
    dim: usize,
    acc: Vec<f32>,
    /// Per-slot weights, prenormalized over the selection.
    weights: Vec<f32>,
    state: Vec<SlotState>,
    /// Out-of-order arrivals, keyed by slot. Empty on in-order paths.
    stash: BTreeMap<usize, Vec<f32>>,
    /// Lowest slot not yet folded or skipped.
    next_slot: usize,
    folded: usize,
    resolved: usize,
    /// Σ weights of folded slots, accumulated in fold (slot) order.
    folded_weight: f32,
    /// Donated buffer (e.g. the previous global) reused as the next `acc`.
    spare: Option<Vec<f32>>,
}

impl StreamingAggregator {
    /// A fresh aggregator for one round: `dim`-float accumulator, one
    /// prenormalized weight per selection slot.
    pub fn new(dim: usize, weights: Vec<f32>) -> Self {
        let mut agg = StreamingAggregator {
            weights,
            ..StreamingAggregator::default()
        };
        agg.rearm(dim);
        agg
    }

    /// Re-arms the aggregator for a new round over `selected`, computing the
    /// prenormalized weights in place (bit-identical to
    /// [`crate::sampling::renormalized_weights`]) and reusing every buffer.
    pub fn reset_for_selection(&mut self, dim: usize, all_weights: &[f32], selected: &[usize]) {
        let total: f32 = selected.iter().map(|&k| all_weights[k]).sum();
        assert!(total > 0.0, "selected clients have zero total weight");
        self.weights.clear();
        self.weights
            .extend(selected.iter().map(|&k| all_weights[k] / total));
        self.rearm(dim);
    }

    /// Zeroes the accumulator (recycling a donated buffer when the current
    /// one was taken by `finish`) and resets all per-round state; the weight
    /// vector is left as-is.
    fn rearm(&mut self, dim: usize) {
        self.dim = dim;
        if self.acc.is_empty() {
            if let Some(spare) = self.spare.take() {
                self.acc = spare;
            }
        }
        self.acc.clear();
        self.acc.resize(dim, 0.0);
        self.state.clear();
        self.state.resize(self.weights.len(), SlotState::Pending);
        self.stash.clear();
        self.next_slot = 0;
        self.folded = 0;
        self.resolved = 0;
        self.folded_weight = 0.0;
    }

    /// Number of slots in the selection.
    pub fn expected(&self) -> usize {
        self.state.len()
    }

    /// Uploads folded so far.
    pub fn folded(&self) -> usize {
        self.folded
    }

    fn fold(&mut self, slot: usize, params: &[f32]) {
        assert_eq!(params.len(), self.dim, "upload dim mismatch at slot {slot}");
        let w = self.weights[slot];
        rfl_tensor::axpy_slices(&mut self.acc, w, params);
        self.folded_weight += w;
        self.folded += 1;
    }

    /// Folds stashed arrivals and skips dropped slots until the next
    /// still-pending slot.
    fn drain(&mut self) {
        while self.next_slot < self.state.len() {
            match self.state[self.next_slot] {
                SlotState::Pending => break,
                SlotState::Dropped | SlotState::Folded => self.next_slot += 1,
                SlotState::Stashed => {
                    let slot = self.next_slot;
                    let params = self.stash.remove(&slot).expect("stashed payload missing");
                    self.fold(slot, &params);
                    self.state[slot] = SlotState::Folded;
                    self.next_slot += 1;
                }
            }
        }
    }

    /// Accepts the upload for `slot`. In-order arrivals fold immediately;
    /// out-of-order arrivals are stashed until every earlier slot resolves.
    pub fn push(&mut self, slot: usize, params: &[f32]) {
        assert!(slot < self.state.len(), "slot {slot} out of range");
        assert_eq!(
            self.state[slot],
            SlotState::Pending,
            "slot {slot} resolved twice"
        );
        self.resolved += 1;
        if slot == self.next_slot {
            self.fold(slot, params);
            self.state[slot] = SlotState::Folded;
            self.next_slot += 1;
            self.drain();
        } else {
            self.stash.insert(slot, params.to_vec());
            self.state[slot] = SlotState::Stashed;
        }
    }

    /// Records that `slot`'s upload was lost in transit, unblocking any
    /// stashed later arrivals.
    pub fn mark_dropped(&mut self, slot: usize) {
        assert!(slot < self.state.len(), "slot {slot} out of range");
        assert_eq!(
            self.state[slot],
            SlotState::Pending,
            "slot {slot} resolved twice"
        );
        self.resolved += 1;
        self.state[slot] = SlotState::Dropped;
        if slot == self.next_slot {
            self.drain();
        }
    }

    /// Finishes the round and returns the aggregate, or `None` when every
    /// upload dropped (the round leaves the global untouched, matching the
    /// empty-delivery guards in the algorithms). With partial delivery the
    /// accumulator is rescaled once by `1/Σ(folded weights)` —
    /// renormalization over the survivors.
    ///
    /// # Panics
    /// Panics if any slot is still unresolved (neither arrived nor marked
    /// dropped) — the caller must account for every selected client.
    pub fn finish(&mut self) -> Option<Vec<f32>> {
        assert_eq!(
            self.resolved,
            self.state.len(),
            "finish() with unresolved slots"
        );
        debug_assert!(self.stash.is_empty());
        if self.folded == 0 {
            return None;
        }
        let mut acc = std::mem::take(&mut self.acc);
        if self.folded < self.state.len() {
            assert!(
                self.folded_weight > 0.0,
                "surviving uploads have zero total weight"
            );
            rfl_tensor::scale_slices(&mut acc, 1.0 / self.folded_weight);
        }
        Some(acc)
    }

    /// Donates a spent `d`-float buffer (typically the previous global
    /// parameters) to be recycled as the next round's accumulator.
    pub fn donate(&mut self, buf: Vec<f32>) {
        if self
            .spare
            .as_ref()
            .is_none_or(|s| s.capacity() < buf.capacity())
        {
            self.spare = Some(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::renormalized_weights;
    use crate::Federation;

    fn params(n: usize, d: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| (0..d).map(|j| (i * d + j) as f32 * 0.37 - 1.5).collect())
            .collect()
    }

    #[test]
    fn in_order_fold_matches_weighted_average_bitwise() {
        let p = params(5, 17);
        let w = renormalized_weights(&[0.2, 0.1, 0.4, 0.05, 0.25], &[0, 1, 2, 3, 4]);
        let mut agg = StreamingAggregator::new(17, w.clone());
        for (slot, pi) in p.iter().enumerate() {
            agg.push(slot, pi);
        }
        let got = agg.finish().unwrap();
        assert_eq!(got, Federation::weighted_average(&p, &w));
    }

    #[test]
    fn arrival_order_is_irrelevant() {
        let p = params(6, 9);
        let w = vec![0.3, 0.1, 0.15, 0.2, 0.05, 0.2];
        let mut in_order = StreamingAggregator::new(9, w.clone());
        for (slot, pi) in p.iter().enumerate() {
            in_order.push(slot, pi);
        }
        let want = in_order.finish().unwrap();
        for perm in [[5, 0, 3, 1, 4, 2], [2, 1, 0, 5, 4, 3], [0, 5, 1, 4, 2, 3]] {
            let mut agg = StreamingAggregator::new(9, w.clone());
            for &slot in &perm {
                agg.push(slot, &p[slot]);
            }
            assert_eq!(agg.finish().unwrap(), want, "perm {perm:?}");
        }
    }

    #[test]
    fn drops_renormalize_over_survivors() {
        let p = params(4, 5);
        let w = vec![0.4, 0.1, 0.3, 0.2];
        let mut agg = StreamingAggregator::new(5, w.clone());
        agg.push(0, &p[0]);
        agg.mark_dropped(1);
        agg.push(2, &p[2]);
        agg.mark_dropped(3);
        let got = agg.finish().unwrap();
        // Oracle: fold survivors in slot order, then one rescale.
        let mut want = vec![0.0f32; 5];
        rfl_tensor::axpy_slices(&mut want, w[0], &p[0]);
        rfl_tensor::axpy_slices(&mut want, w[2], &p[2]);
        rfl_tensor::scale_slices(&mut want, 1.0 / (w[0] + w[2]));
        assert_eq!(got, want);
    }

    #[test]
    fn late_drop_unblocks_stashed_arrivals() {
        let p = params(3, 4);
        let w = vec![0.5, 0.25, 0.25];
        let mut agg = StreamingAggregator::new(4, w.clone());
        agg.push(2, &p[2]); // stashed: slots 0 and 1 unresolved
        agg.push(0, &p[0]); // folds 0; 2 still blocked behind 1
        assert_eq!(agg.folded(), 1);
        agg.mark_dropped(1); // unblocks 2
        assert_eq!(agg.folded(), 2);
        let got = agg.finish().unwrap();
        let mut want = vec![0.0f32; 4];
        rfl_tensor::axpy_slices(&mut want, w[0], &p[0]);
        rfl_tensor::axpy_slices(&mut want, w[2], &p[2]);
        rfl_tensor::scale_slices(&mut want, 1.0 / (w[0] + w[2]));
        assert_eq!(got, want);
    }

    #[test]
    fn all_dropped_returns_none() {
        let mut agg = StreamingAggregator::new(3, vec![0.5, 0.5]);
        agg.mark_dropped(0);
        agg.mark_dropped(1);
        assert!(agg.finish().is_none());
    }

    #[test]
    fn single_survivor_recovers_its_params_up_to_rescale() {
        let p = params(3, 6);
        let w = vec![0.25, 0.5, 0.25];
        let mut agg = StreamingAggregator::new(6, w.clone());
        agg.mark_dropped(0);
        agg.push(1, &p[1]);
        agg.mark_dropped(2);
        let got = agg.finish().unwrap();
        for (g, x) in got.iter().zip(&p[1]) {
            assert!((g - x).abs() <= x.abs() * 1e-6 + 1e-6, "{g} vs {x}");
        }
    }

    #[test]
    fn reset_reuses_buffers_and_matches_fresh() {
        let all_w = vec![0.1f32, 0.2, 0.3, 0.4];
        let sel = vec![0usize, 2, 3];
        let p = params(3, 8);
        let run = |agg: &mut StreamingAggregator| {
            agg.reset_for_selection(8, &all_w, &sel);
            for (slot, pi) in p.iter().enumerate() {
                agg.push(slot, pi);
            }
            agg.finish().unwrap()
        };
        let mut agg = StreamingAggregator::default();
        let first = run(&mut agg);
        agg.donate(first.clone());
        let second = run(&mut agg);
        assert_eq!(first, second);
        assert_eq!(
            first,
            Federation::weighted_average(&p, &renormalized_weights(&all_w, &sel))
        );
    }

    #[test]
    #[should_panic(expected = "resolved twice")]
    fn double_push_panics() {
        let p = params(2, 2);
        let mut agg = StreamingAggregator::new(2, vec![0.5, 0.5]);
        agg.push(0, &p[0]);
        agg.push(0, &p[0]);
    }

    #[test]
    #[should_panic(expected = "unresolved slots")]
    fn finish_with_pending_slot_panics() {
        let mut agg = StreamingAggregator::new(2, vec![0.5, 0.5]);
        agg.push(0, &[1.0, 2.0]);
        let _ = agg.finish();
    }
}
