//! A federated client: private data, a model replica, persistent local
//! optimizer state, and a private RNG.

use crate::eval::{evaluate, gather_batch, to_input, EvalResult};
use crate::mmd;
use crate::rules::LocalRule;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfl_data::{BatchSampler, Dataset};
use rfl_nn::{cross_entropy_into, Input, Model, ModelOutput, Optimizer};
use rfl_tensor::Tensor;

/// Result of one local training phase.
#[derive(Clone, Copy, Debug)]
pub struct LocalReport {
    /// Mean data loss (`f_k`) over the local steps.
    pub loss: f32,
    /// Mean regularizer loss (`λ·r̃_k` estimate) over the local steps;
    /// zero unless an MMD rule was active.
    pub reg_loss: f32,
    /// Steps actually performed.
    pub steps: usize,
    /// Total training examples consumed across those steps.
    pub examples: usize,
}

/// The durable slice of a client's state, retained while the heavyweight
/// simulation objects (model replica, dataset, scratch buffers) are evicted
/// between rounds. Moving these four fields out on
/// [`Client::hibernate`] and back in on [`Client::wake`] round-trips the
/// client bit-exactly: the RNG stream position, the epoch-shuffle cursor,
/// the optimizer state (momentum/Adam moments, learning rate), and the
/// flat parameters are everything local training reads besides the data
/// itself, which the registry regenerates deterministically.
pub struct ClientPersist {
    pub(crate) rng: StdRng,
    pub(crate) sampler: BatchSampler,
    pub(crate) optimizer: Box<dyn Optimizer>,
    pub(crate) params: Vec<f32>,
    /// Error-feedback residual of the compression stage: what the last
    /// compressed upload failed to carry, folded into the next update.
    /// Empty (length 0) until the first compressed upload. Durable state —
    /// dropping it on eviction would silently change the model trajectory
    /// whenever uploads are compressed.
    pub(crate) residual: Vec<f32>,
}

/// One client in the federation.
pub struct Client {
    id: usize,
    model: Box<dyn Model>,
    data: Dataset,
    optimizer: Box<dyn Optimizer>,
    sampler: BatchSampler,
    rng: StdRng,
    clip_grad_norm: Option<f32>,
    flat: Vec<f32>,
    grads: Vec<f32>,
    residual: Vec<f32>,
    // Reusable mini-batch buffers: once warm, a local SGD step touches the
    // allocator only through the model's own (workspace-backed) forward.
    batch_idx: Vec<usize>,
    batch_input: Option<Input>,
    batch_labels: Vec<usize>,
    out: ModelOutput,
    log_p: Tensor,
    dlogits: Tensor,
    mu: Tensor,
    dfeatures: Tensor,
    feat_sum: Tensor,
}

impl Client {
    pub fn new(
        id: usize,
        model: Box<dyn Model>,
        data: Dataset,
        optimizer: Box<dyn Optimizer>,
        batch_size: usize,
        seed: u64,
    ) -> Self {
        assert!(!data.is_empty(), "client {id} has no data");
        let sampler = BatchSampler::new(data.len(), batch_size);
        Client {
            id,
            model,
            data,
            optimizer,
            sampler,
            // Offset the stream so clients never share a sequence.
            rng: StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            clip_grad_norm: None,
            flat: Vec::new(),
            grads: Vec::new(),
            residual: Vec::new(),
            batch_idx: Vec::new(),
            batch_input: None,
            batch_labels: Vec::new(),
            out: ModelOutput::scratch(),
            log_p: Tensor::scratch(),
            dlogits: Tensor::scratch(),
            mu: Tensor::scratch(),
            dfeatures: Tensor::scratch(),
            feat_sum: Tensor::scratch(),
        }
    }

    /// Tears the client down to its durable state ([`ClientPersist`]),
    /// dropping the model replica, the dataset, and every scratch buffer.
    /// The lazy registry calls this when evicting a client after its round.
    pub fn hibernate(mut self) -> ClientPersist {
        let mut params = std::mem::take(&mut self.flat);
        self.model.read_params(&mut params);
        ClientPersist {
            rng: self.rng,
            sampler: self.sampler,
            optimizer: self.optimizer,
            params,
            residual: self.residual,
        }
    }

    /// Rebuilds a hibernated client around a freshly constructed model and a
    /// regenerated dataset. Bit-exact inverse of [`Client::hibernate`]: the
    /// persisted parameters overwrite the model's fresh initialization, and
    /// the RNG/sampler/optimizer resume exactly where they stopped.
    pub fn wake(
        id: usize,
        mut model: Box<dyn Model>,
        data: Dataset,
        persist: ClientPersist,
        clip_grad_norm: Option<f32>,
    ) -> Self {
        assert!(!data.is_empty(), "client {id} has no data");
        model.write_params(&persist.params);
        Client {
            id,
            model,
            data,
            optimizer: persist.optimizer,
            sampler: persist.sampler,
            rng: persist.rng,
            clip_grad_norm,
            flat: persist.params,
            grads: Vec::new(),
            residual: persist.residual,
            batch_idx: Vec::new(),
            batch_input: None,
            batch_labels: Vec::new(),
            out: ModelOutput::scratch(),
            log_p: Tensor::scratch(),
            dlogits: Tensor::scratch(),
            mu: Tensor::scratch(),
            dfeatures: Tensor::scratch(),
            feat_sum: Tensor::scratch(),
        }
    }

    /// Enables global-norm gradient clipping on the assembled local
    /// gradient (data gradient plus algorithm corrections).
    pub fn set_clip_grad_norm(&mut self, clip: Option<f32>) {
        assert!(clip.is_none_or(|c| c > 0.0), "clip must be positive");
        self.clip_grad_norm = clip;
    }

    pub fn id(&self) -> usize {
        self.id
    }

    pub fn num_samples(&self) -> usize {
        self.data.len()
    }

    pub fn data(&self) -> &Dataset {
        &self.data
    }

    pub fn feature_dim(&self) -> usize {
        self.model.feature_dim()
    }

    pub fn num_params(&mut self) -> usize {
        self.model.num_params()
    }

    /// Installs parameters received from the server.
    pub fn write_params(&mut self, params: &[f32]) {
        self.model.write_params(params);
    }

    /// Reads the client's current parameters.
    pub fn read_params(&self, out: &mut Vec<f32>) {
        self.model.read_params(out);
    }

    /// The error-feedback residual of the compressed-upload stage. The
    /// compression helpers ([`crate::compress::ef_compress_update`]) size it
    /// lazily on first use; it survives hibernation via [`ClientPersist`].
    pub fn residual_mut(&mut self) -> &mut Vec<f32> {
        &mut self.residual
    }

    /// Read-only view of the error-feedback residual (tests, diagnostics).
    pub fn residual(&self) -> &[f32] {
        &self.residual
    }

    /// Learning rate of the local optimizer.
    pub fn lr(&self) -> f32 {
        self.optimizer.lr()
    }

    /// Overrides the local learning rate (decaying schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.optimizer.set_lr(lr);
    }

    /// Runs `steps` mini-batch SGD steps under `rule` (Algorithm 1/2 inner
    /// loop, lines 6–10).
    pub fn train_local(&mut self, steps: usize, rule: &LocalRule) -> LocalReport {
        let mut loss_sum = 0.0f32;
        let mut reg_sum = 0.0f32;
        let mut examples = 0usize;
        for _ in 0..steps {
            self.sampler
                .next_batch_into(&mut self.rng, &mut self.batch_idx);
            examples += self.batch_idx.len();
            gather_batch(
                &self.data,
                &self.batch_idx,
                &mut self.batch_input,
                &mut self.batch_labels,
            );
            self.model.zero_grads();
            self.model.forward_into(
                self.batch_input.as_ref().expect("batch gathered"),
                &mut self.out,
                true,
            );
            let loss = cross_entropy_into(
                &self.out.logits,
                &self.batch_labels,
                &mut self.log_p,
                &mut self.dlogits,
            );
            loss_sum += loss;

            let dfeatures = match rule {
                LocalRule::Mmd { lambda, target } => {
                    reg_sum += mmd::regularizer_loss_into(
                        &self.out.features,
                        target,
                        *lambda,
                        &mut self.mu,
                    );
                    mmd::feature_gradient_into(
                        &self.out.features,
                        target,
                        *lambda,
                        &mut self.mu,
                        &mut self.dfeatures,
                    );
                    Some(&self.dfeatures)
                }
                _ => None,
            };
            self.model.backward(&self.dlogits, dfeatures);

            self.model.read_params(&mut self.flat);
            self.model.read_grads(&mut self.grads);
            match rule {
                LocalRule::Prox { mu, anchor } => {
                    debug_assert_eq!(anchor.len(), self.flat.len());
                    for ((g, w), a) in self.grads.iter_mut().zip(&self.flat).zip(anchor.iter()) {
                        *g += mu * (w - a);
                    }
                }
                LocalRule::Scaffold { correction } => {
                    debug_assert_eq!(correction.len(), self.grads.len());
                    for (g, c) in self.grads.iter_mut().zip(correction.iter()) {
                        *g += c;
                    }
                }
                _ => {}
            }
            if let Some(clip) = self.clip_grad_norm {
                let norm = self.grads.iter().map(|g| g * g).sum::<f32>().sqrt();
                if norm > clip {
                    let s = clip / norm;
                    for g in &mut self.grads {
                        *g *= s;
                    }
                }
            }
            self.optimizer.step(&mut self.flat, &self.grads);
            self.model.write_params(&self.flat);
        }
        LocalReport {
            loss: loss_sum / steps.max(1) as f32,
            reg_loss: reg_sum / steps.max(1) as f32,
            steps,
            examples,
        }
    }

    /// Computes the local mapping `δ_k = (1/n_k) Σ φ(x)` over the *full*
    /// local dataset with the client's current parameters (Algorithm 1
    /// line 10 / Algorithm 2 line 15), batched to bound memory.
    pub fn compute_delta(&mut self, batch: usize) -> Vec<f32> {
        let n = self.data.len();
        let d = self.model.feature_dim();
        let mut sum = vec![0.0f32; d];
        let mut lo = 0usize;
        while lo < n {
            let hi = (lo + batch).min(n);
            self.batch_idx.clear();
            self.batch_idx.extend(lo..hi);
            gather_batch(
                &self.data,
                &self.batch_idx,
                &mut self.batch_input,
                &mut self.batch_labels,
            );
            self.model.forward_into(
                self.batch_input.as_ref().expect("batch gathered"),
                &mut self.out,
                false,
            );
            self.out.features.sum_axis0_into(&mut self.feat_sum);
            for (s, &v) in sum.iter_mut().zip(self.feat_sum.data()) {
                *s += v;
            }
            lo = hi;
        }
        let inv = 1.0 / n as f32;
        for s in &mut sum {
            *s *= inv;
        }
        sum
    }

    /// Feature embeddings of up to `max_n` local samples (visualization).
    pub fn compute_features(&mut self, max_n: usize) -> (Tensor, Vec<usize>) {
        let n = self.data.len().min(max_n);
        let idx: Vec<usize> = (0..n).collect();
        let sub = self.data.select(&idx);
        let out = self.model.forward(&to_input(sub.examples()), false);
        (out.features, sub.labels().to_vec())
    }

    /// Loss/accuracy of the current model on the client's own data
    /// (used by q-FedAvg and the fairness evaluation).
    pub fn evaluate_local(&mut self, batch: usize) -> EvalResult {
        evaluate(self.model.as_mut(), &self.data, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rfl_data::Examples;
    use rfl_nn::{LinearNet, LogisticRegression, Sgd};
    use rfl_tensor::Initializer;
    use std::sync::Arc;

    fn dense_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Initializer::Normal(1.0).init(&[n, 4], &mut rng);
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        // Make it learnable: shift coordinate 0 by the label.
        for (i, &y) in labels.iter().enumerate() {
            x.data_mut()[i * 4] += if y == 1 { 2.0 } else { -2.0 };
        }
        Dataset::new(Examples::Dense(x), labels, 2)
    }

    fn make_client(seed: u64) -> Client {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = Box::new(LogisticRegression::new(4, 2, 0.0, &mut rng));
        Client::new(
            0,
            model,
            dense_data(32, seed),
            Box::new(Sgd::new(0.2)),
            8,
            seed,
        )
    }

    #[test]
    fn plain_training_reduces_loss() {
        let mut c = make_client(0);
        let before = c.evaluate_local(16).loss;
        c.train_local(30, &LocalRule::Plain);
        let after = c.evaluate_local(16).loss;
        assert!(after < before, "{before} → {after}");
    }

    #[test]
    fn prox_rule_pulls_toward_anchor() {
        // With an enormous μ the parameters barely move from the anchor.
        let mut c_free = make_client(1);
        let mut c_prox = make_client(1);
        let mut anchor = Vec::new();
        c_prox.read_params(&mut anchor);
        let anchor = Arc::new(anchor);
        c_free.train_local(20, &LocalRule::Plain);
        // μ must keep lr·μ < 1 or plain SGD on the proximal term diverges
        // (lr = 0.2 here, so μ = 4 gives a per-step pull factor of 0.8).
        c_prox.train_local(
            20,
            &LocalRule::Prox {
                mu: 4.0,
                anchor: anchor.clone(),
            },
        );
        let mut w_free = Vec::new();
        let mut w_prox = Vec::new();
        c_free.read_params(&mut w_free);
        c_prox.read_params(&mut w_prox);
        let drift = |w: &[f32]| -> f32 {
            w.iter()
                .zip(anchor.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum()
        };
        assert!(drift(&w_prox) < drift(&w_free) * 0.5);
    }

    #[test]
    fn scaffold_correction_shifts_update() {
        // A constant correction acts like an extra gradient: params move
        // opposite to it.
        let mut c = make_client(2);
        let n = c.num_params();
        let mut before = Vec::new();
        c.read_params(&mut before);
        let correction = Arc::new(vec![1000.0f32; n]);
        c.train_local(1, &LocalRule::Scaffold { correction });
        let mut after = Vec::new();
        c.read_params(&mut after);
        // lr 0.2 × correction 1000 dominates: every param decreased by ~200.
        for (b, a) in before.iter().zip(&after) {
            assert!(b - a > 100.0, "param did not move: {b} → {a}");
        }
    }

    #[test]
    fn mmd_rule_shrinks_distance_to_target() {
        // LinearNet has a trainable feature map, so the MMD pull must reduce
        // ‖δ − target‖ when λ is large.
        let mut rng = StdRng::seed_from_u64(3);
        let model = Box::new(LinearNet::new(4, 3, 2, 0.0, &mut rng));
        let mut c = Client::new(0, model, dense_data(32, 3), Box::new(Sgd::new(0.05)), 8, 3);
        let target = Arc::new(vec![0.0f32; 3]);
        let d0 = c.compute_delta(16);
        let dist0: f32 = d0.iter().map(|v| v * v).sum();
        // λ sized so lr·λ stays contractive on this linear feature map.
        c.train_local(
            100,
            &LocalRule::Mmd {
                lambda: 0.5,
                target: target.clone(),
            },
        );
        let d1 = c.compute_delta(16);
        let dist1: f32 = d1.iter().map(|v| v * v).sum();
        assert!(dist1 < dist0, "{dist0} → {dist1}");
    }

    #[test]
    fn compute_delta_matches_manual_mean() {
        let mut c = make_client(4);
        let d_batched = c.compute_delta(5); // odd batch to exercise the loop
        let d_full = c.compute_delta(1000);
        for (a, b) in d_batched.iter().zip(&d_full) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn report_counts_steps_and_losses() {
        let mut c = make_client(5);
        let r = c.train_local(7, &LocalRule::Plain);
        assert_eq!(r.steps, 7);
        assert_eq!(r.examples, 7 * 8, "32 samples / batch 8 → full batches");
        assert!(r.loss > 0.0);
        assert_eq!(r.reg_loss, 0.0);
    }

    #[test]
    fn hibernate_wake_roundtrip_is_bit_exact() {
        // A client evicted mid-run and revived around a fresh model + a
        // regenerated dataset must continue training bit-identically to one
        // that stayed live the whole time.
        let mut live = make_client(7);
        let mut cycled = make_client(7);
        live.train_local(3, &LocalRule::Plain);
        cycled.train_local(3, &LocalRule::Plain);
        let persist = cycled.hibernate();
        let mut rng = StdRng::seed_from_u64(7);
        let fresh_model = Box::new(LogisticRegression::new(4, 2, 0.0, &mut rng));
        let mut cycled = Client::wake(0, fresh_model, dense_data(32, 7), persist, None);
        live.train_local(5, &LocalRule::Plain);
        cycled.train_local(5, &LocalRule::Plain);
        let (mut wa, mut wb) = (Vec::new(), Vec::new());
        live.read_params(&mut wa);
        cycled.read_params(&mut wb);
        assert_eq!(wa, wb, "eviction round-trip diverged");
    }

    #[test]
    fn hibernate_preserves_the_compression_residual() {
        let mut c = make_client(8);
        c.residual_mut().extend_from_slice(&[0.25, -1.5, 3.0e-8]);
        let persist = c.hibernate();
        let mut rng = StdRng::seed_from_u64(8);
        let fresh_model = Box::new(LogisticRegression::new(4, 2, 0.0, &mut rng));
        let woken = Client::wake(0, fresh_model, dense_data(32, 8), persist, None);
        assert_eq!(woken.residual(), &[0.25, -1.5, 3.0e-8]);
    }

    #[test]
    fn clients_with_same_seed_and_id_are_deterministic() {
        let mut a = make_client(6);
        let mut b = make_client(6);
        a.train_local(5, &LocalRule::Plain);
        b.train_local(5, &LocalRule::Plain);
        let (mut wa, mut wb) = (Vec::new(), Vec::new());
        a.read_params(&mut wa);
        b.read_params(&mut wb);
        assert_eq!(wa, wb);
    }
}
