//! Differentially private release of δ maps (Sec. VI-B.8).
//!
//! Following the paper's privacy evaluation (after Abadi et al.), the client
//! clips its δ to L2 norm `c0` and adds Gaussian noise scaled by the batch
//! size: `δ̃ ← clip(δ) + (1/L)·N(0, σ₂²·c0²·I)`.

use rand::Rng;
use rfl_tensor::normal_sample;

/// Configuration of the Gaussian mechanism on δ.
#[derive(Clone, Copy, Debug)]
pub struct DpConfig {
    /// Noise multiplier σ₂ (0 disables noise but still clips).
    pub sigma: f32,
    /// Clipping constant C₀.
    pub clip: f32,
    /// Batch size L used to scale the noise.
    pub batch: usize,
}

impl DpConfig {
    pub fn new(sigma: f32, clip: f32, batch: usize) -> Self {
        assert!(sigma >= 0.0 && clip > 0.0 && batch > 0);
        DpConfig { sigma, clip, batch }
    }
}

/// Clips `delta` to L2 norm `clip` in place; returns the pre-clip norm.
pub fn clip_l2(delta: &mut [f32], clip: f32) -> f32 {
    let norm = delta.iter().map(|v| v * v).sum::<f32>().sqrt();
    if norm > clip {
        let s = clip / norm;
        for v in delta.iter_mut() {
            *v *= s;
        }
    }
    norm
}

/// Applies the Gaussian mechanism to a δ map in place.
pub fn privatize_delta<R: Rng>(delta: &mut [f32], cfg: DpConfig, rng: &mut R) {
    clip_l2(delta, cfg.clip);
    if cfg.sigma == 0.0 {
        return;
    }
    let std = cfg.sigma * cfg.clip / cfg.batch as f32;
    for v in delta.iter_mut() {
        *v += std * normal_sample(rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clip_is_noop_inside_ball() {
        let mut d = vec![0.3, 0.4]; // norm 0.5
        let pre = clip_l2(&mut d, 1.0);
        assert!((pre - 0.5).abs() < 1e-6);
        assert_eq!(d, vec![0.3, 0.4]);
    }

    #[test]
    fn clip_projects_onto_ball() {
        let mut d = vec![3.0, 4.0]; // norm 5
        clip_l2(&mut d, 1.0);
        let norm = (d[0] * d[0] + d[1] * d[1]).sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
        // Direction preserved.
        assert!((d[1] / d[0] - 4.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn zero_sigma_only_clips() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut d = vec![3.0, 4.0];
        privatize_delta(&mut d, DpConfig::new(0.0, 10.0, 32), &mut rng);
        assert_eq!(d, vec![3.0, 4.0]);
    }

    #[test]
    fn noise_std_scales_with_sigma_over_batch() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000usize;
        let mut d = vec![0.0f32; n];
        let cfg = DpConfig::new(5.0, 2.0, 10);
        privatize_delta(&mut d, cfg, &mut rng);
        let mean = d.iter().sum::<f32>() / n as f32;
        let var = d.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        let expected_std = 5.0 * 2.0 / 10.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!(
            (var.sqrt() - expected_std).abs() < 0.05,
            "std {} vs {expected_std}",
            var.sqrt()
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = DpConfig::new(1.0, 1.0, 4);
        let mut a = vec![0.5, 0.5];
        let mut b = vec![0.5, 0.5];
        privatize_delta(&mut a, cfg, &mut StdRng::seed_from_u64(2));
        privatize_delta(&mut b, cfg, &mut StdRng::seed_from_u64(2));
        assert_eq!(a, b);
    }
}
