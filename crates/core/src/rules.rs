//! Local-update rules: how each algorithm modifies vanilla local SGD.
//!
//! A [`LocalRule`] is pure data (no closures) so that client training can be
//! dispatched across worker threads; the client interprets the rule inside
//! its step loop.

use std::sync::Arc;

/// The per-round local-update modification for one client.
#[derive(Clone, Debug)]
pub enum LocalRule {
    /// Vanilla local SGD (FedAvg, q-FedAvg local phase).
    Plain,
    /// FedProx: add `μ(w − w_anchor)` to the gradient (the gradient of the
    /// proximal term `μ/2·‖w − w_global‖²`).
    Prox { mu: f32, anchor: Arc<Vec<f32>> },
    /// SCAFFOLD: add the control-variate correction `c − c_k` to the
    /// gradient.
    Scaffold { correction: Arc<Vec<f32>> },
    /// rFedAvg / rFedAvg+: inject the distribution-regularizer gradient
    /// `2λ(μ_B − δ_target)/B` at the feature layer (Eq. 5 with the delayed
    /// target `δ_target`).
    Mmd { lambda: f32, target: Arc<Vec<f32>> },
}

impl LocalRule {
    /// Human-readable tag for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            LocalRule::Plain => "plain",
            LocalRule::Prox { .. } => "prox",
            LocalRule::Scaffold { .. } => "scaffold",
            LocalRule::Mmd { .. } => "mmd",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct() {
        assert_eq!(LocalRule::Plain.kind(), "plain");
        assert_eq!(
            LocalRule::Prox {
                mu: 1.0,
                anchor: Arc::new(vec![])
            }
            .kind(),
            "prox"
        );
        assert_eq!(
            LocalRule::Mmd {
                lambda: 0.1,
                target: Arc::new(vec![])
            }
            .kind(),
            "mmd"
        );
    }

    #[test]
    fn rules_are_cheaply_cloneable() {
        let big = Arc::new(vec![0.0f32; 1_000]);
        let r = LocalRule::Mmd {
            lambda: 0.5,
            target: big.clone(),
        };
        let r2 = r.clone();
        // The Arc is shared, not deep-copied.
        if let (LocalRule::Mmd { target: a, .. }, LocalRule::Mmd { target: b, .. }) = (&r, &r2) {
            assert!(Arc::ptr_eq(a, b));
        } else {
            unreachable!();
        }
        assert_eq!(Arc::strong_count(&big), 3);
    }
}
