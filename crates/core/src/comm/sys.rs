//! Minimal `extern "C"` bindings to the POSIX primitives the event-driven
//! socket reactor needs: `poll(2)` for readiness, `pipe(2)` + `fcntl(2)`
//! for the self-pipe wakeup, and `writev(2)` for flushing queued frames
//! with partial-write resume. std already links libc on every supported
//! unix target, so no new crates are involved; everything here is a thin
//! safe wrapper with `EINTR` retry and `WouldBlock` mapping, and the unsafe
//! surface is confined to this module.
#![deny(unsafe_op_in_unsafe_fn)]
#![deny(clippy::undocumented_unsafe_blocks)]

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::os::raw::{c_int, c_short, c_ulong, c_void};

/// `struct pollfd` of `poll(2)`, bit-identical to the C layout.
#[repr(C)]
#[derive(Clone, Copy)]
pub(crate) struct PollFd {
    pub fd: c_int,
    pub events: c_short,
    pub revents: c_short,
}

impl PollFd {
    pub(crate) fn new(fd: RawFd, events: c_short) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }
}

pub(crate) const POLLIN: c_short = 0x001;
pub(crate) const POLLOUT: c_short = 0x004;
pub(crate) const POLLERR: c_short = 0x008;
pub(crate) const POLLHUP: c_short = 0x010;
pub(crate) const POLLNVAL: c_short = 0x020;

/// `struct iovec` of `writev(2)`.
#[repr(C)]
struct IoVec {
    base: *const c_void,
    len: usize,
}

/// Keep gather lists well under every platform's `IOV_MAX` (≥ 16 per
/// POSIX, 1024 on Linux).
pub(crate) const MAX_IOV: usize = 64;

const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
#[cfg(target_os = "linux")]
const O_NONBLOCK: c_int = 0o4000;
#[cfg(not(target_os = "linux"))]
const O_NONBLOCK: c_int = 0x0004;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn writev(fd: c_int, iov: *const IoVec, iovcnt: c_int) -> isize;
    fn pipe(fds: *mut c_int) -> c_int;
    // Declared with the `F_SETFL`/`F_GETFL` arity; the C ABI passes a
    // trailing int to a variadic identically on every supported target.
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
}

fn retry_on_eintr<F: FnMut() -> isize>(mut f: F) -> io::Result<usize> {
    loop {
        let r = f();
        if r >= 0 {
            return Ok(r as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// Blocks until one of `fds` is ready or `timeout_ms` passes (`-1` waits
/// forever). Returns the number of ready descriptors; retries `EINTR`.
pub(crate) fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    // SAFETY: `fds` is a live, exclusively borrowed slice of `#[repr(C)]`
    // pollfd records; the kernel writes only to `revents` within bounds.
    retry_on_eintr(|| unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) as isize })
}

/// One nonblocking `read(2)`: `Ok(0)` is EOF, `WouldBlock` means no bytes
/// are ready.
pub(crate) fn read_fd(fd: RawFd, buf: &mut [u8]) -> io::Result<usize> {
    // SAFETY: `buf` is a live, exclusively borrowed byte slice; the kernel
    // writes at most `buf.len()` bytes into it.
    retry_on_eintr(|| unsafe { read(fd, buf.as_mut_ptr().cast::<c_void>(), buf.len()) })
}

/// One nonblocking `write(2)`; returns the bytes accepted.
pub(crate) fn write_fd(fd: RawFd, buf: &[u8]) -> io::Result<usize> {
    // SAFETY: `buf` is a live byte slice the kernel only reads from.
    retry_on_eintr(|| unsafe { write(fd, buf.as_ptr().cast::<c_void>(), buf.len()) })
}

/// Vectored write of up to [`MAX_IOV`] slices in one syscall; returns the
/// bytes accepted (possibly a partial prefix — the caller resumes).
pub(crate) fn writev_fd(fd: RawFd, slices: &[&[u8]]) -> io::Result<usize> {
    let iovs: Vec<IoVec> = slices
        .iter()
        .take(MAX_IOV)
        .map(|s| IoVec {
            base: s.as_ptr().cast::<c_void>(),
            len: s.len(),
        })
        .collect();
    // SAFETY: every iovec points into a live borrowed slice, `iovcnt`
    // matches the array length, and the kernel only reads the buffers.
    retry_on_eintr(|| unsafe { writev(fd, iovs.as_ptr(), iovs.len() as c_int) })
}

/// Puts `fd` into nonblocking mode via `fcntl(2)`.
pub(crate) fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    // SAFETY: plain fcntl flag query/update on a descriptor we own.
    let flags = unsafe { fcntl(fd, F_GETFL, 0) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: as above; only adds O_NONBLOCK to the existing flags.
    if unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// A nonblocking self-pipe: `(read_end, write_end)`. Writing a byte to the
/// write end wakes a reactor blocked in [`poll_fds`]; the read end is
/// drained on every wakeup.
pub(crate) fn pipe_nonblocking() -> io::Result<(OwnedFd, OwnedFd)> {
    let mut fds: [c_int; 2] = [-1, -1];
    // SAFETY: `fds` is a live 2-element array `pipe(2)` fills on success.
    if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: on success both descriptors are freshly created and owned by
    // no other handle, so transferring ownership to OwnedFd is sound.
    let (rx, tx) = unsafe { (OwnedFd::from_raw_fd(fds[0]), OwnedFd::from_raw_fd(fds[1])) };
    set_nonblocking(rx.as_raw_fd())?;
    set_nonblocking(tx.as_raw_fd())?;
    Ok((rx, tx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_wakes_poll_and_drains() {
        let (rx, tx) = pipe_nonblocking().expect("pipe");
        // Nothing pending: a zero-timeout poll reports no readiness.
        let mut fds = [PollFd::new(rx.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
        // A wake byte makes the read end readable.
        assert_eq!(write_fd(tx.as_raw_fd(), &[1]).unwrap(), 1);
        let mut fds = [PollFd::new(rx.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert_ne!(fds[0].revents & POLLIN, 0);
        // Drain; the next read would block instead of returning garbage.
        let mut buf = [0u8; 16];
        assert_eq!(read_fd(rx.as_raw_fd(), &mut buf).unwrap(), 1);
        assert_eq!(
            read_fd(rx.as_raw_fd(), &mut buf).unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );
    }

    #[test]
    fn writev_gathers_in_order() {
        let (rx, tx) = pipe_nonblocking().expect("pipe");
        let n = writev_fd(tx.as_raw_fd(), &[b"ab", b"", b"cde"]).unwrap();
        assert_eq!(n, 5);
        let mut buf = [0u8; 16];
        let got = read_fd(rx.as_raw_fd(), &mut buf).unwrap();
        assert_eq!(&buf[..got], b"abcde");
    }
}
