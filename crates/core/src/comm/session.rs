//! Per-connection server-side session: a small state machine over one
//! client's socket.
//!
//! Every accepted connection walks `Handshake → Registered`, oscillates
//! `Registered ↔ InRound` while the round loop runs, and ends in `Draining`
//! — either gracefully (the client sent [`ControlMsg::Goodbye`]) or because
//! the link died. A draining session never delivers again: every later send
//! or receive on it reports a deterministic [`DropReason::Loss`], which is
//! exactly how the in-memory fault models describe a lost client, so the
//! round loop's churn handling is identical across backends.
//!
//! Each live session owns a reader thread that drains the socket into a
//! tag-indexed frame queue; the transport's blocking receives pop from the
//! queue under a bounded wait, so a hung client can never wedge the server.

use super::message::ControlMsg;
use super::socket::{read_frame, write_frame, WireStream, FRAME_HEADER_BYTES};
use std::collections::VecDeque;
use std::io;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Lifecycle of one client connection, as seen by the server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionState {
    /// Connected, `Hello` not yet validated.
    Handshake,
    /// Registered and idle between rounds.
    Registered,
    /// A `TrainStart` is outstanding; the client owes a report + upload.
    InRound,
    /// The client left (goodbye, error, or replacement); terminal.
    Draining,
}

impl SessionState {
    /// Whether the machine may move from `self` to `to`. `Draining` is
    /// terminal: a reconnect creates a *new* session rather than reviving
    /// the drained one.
    pub fn can_transition(self, to: SessionState) -> bool {
        use SessionState::*;
        matches!(
            (self, to),
            (Handshake, Registered)
                | (Registered, InRound)
                | (InRound, Registered)
                | (Handshake, Draining)
                | (Registered, Draining)
                | (InRound, Draining)
        )
    }

    pub fn name(self) -> &'static str {
        match self {
            SessionState::Handshake => "handshake",
            SessionState::Registered => "registered",
            SessionState::InRound => "in_round",
            SessionState::Draining => "draining",
        }
    }
}

/// Why a blocking receive returned no frame.
#[derive(Debug)]
pub(crate) enum RecvError {
    /// The session is draining (goodbye, dead link, or replaced).
    Closed,
    /// No matching frame arrived within the wait bound.
    TimedOut,
}

struct SessionInner {
    state: Mutex<SessionState>,
    /// Received frames, newest last, not yet claimed by the round loop.
    queue: Mutex<VecDeque<(u8, Vec<u8>)>>,
    cv: Condvar,
}

/// One registered client connection. The writer half lives behind a mutex
/// (the round loop and shutdown may race); the reader half is owned by the
/// session's reader thread.
pub(crate) struct Session {
    writer: Mutex<Box<dyn WireStream>>,
    inner: Arc<SessionInner>,
    /// Raw handle used to force-close the socket on shutdown so the reader
    /// thread unblocks.
    closer: Box<dyn WireStream>,
}

impl Session {
    /// Wraps an already-handshaken stream in a `Registered` session and
    /// spawns its reader thread.
    pub(crate) fn spawn(id: usize, stream: Box<dyn WireStream>) -> io::Result<Arc<Session>> {
        let writer = stream.try_clone_stream()?;
        let closer = stream.try_clone_stream()?;
        let inner = Arc::new(SessionInner {
            state: Mutex::new(SessionState::Registered),
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        });
        let session = Arc::new(Session {
            writer: Mutex::new(writer),
            inner: inner.clone(),
            closer,
        });
        let mut reader = stream;
        std::thread::Builder::new()
            .name(format!("rfl-session-{id}"))
            .spawn(move || {
                loop {
                    match read_frame(&mut reader) {
                        Ok((tag, body)) => {
                            if tag == ControlMsg::Goodbye.tag() {
                                Session::drain_inner(&inner);
                                break;
                            }
                            let mut q = inner.queue.lock().expect("session queue poisoned");
                            q.push_back((tag, body));
                            inner.cv.notify_all();
                        }
                        Err(_) => {
                            // EOF, reset, or garbage: the link is gone.
                            Session::drain_inner(&inner);
                            break;
                        }
                    }
                }
            })?;
        Ok(session)
    }

    fn drain_inner(inner: &SessionInner) {
        *inner.state.lock().expect("session state poisoned") = SessionState::Draining;
        inner.cv.notify_all();
    }

    pub(crate) fn state(&self) -> SessionState {
        *self.inner.state.lock().expect("session state poisoned")
    }

    /// Moves the machine to `to` if the transition is legal; draining wins
    /// every race (a goodbye observed mid-transition sticks).
    pub(crate) fn set_state(&self, to: SessionState) {
        let mut st = self.inner.state.lock().expect("session state poisoned");
        if st.can_transition(to) {
            *st = to;
        }
    }

    /// Whether the session can still carry traffic.
    pub(crate) fn is_live(&self) -> bool {
        self.state() != SessionState::Draining
    }

    /// Writes one frame; returns the wire bytes. A failed write drains the
    /// session (the link is dead — everything after it is dropped too).
    pub(crate) fn send_frame(&self, tag: u8, body: &[u8]) -> io::Result<u64> {
        if !self.is_live() {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "session draining",
            ));
        }
        let mut w = self.writer.lock().expect("session writer poisoned");
        match write_frame(&mut **w, tag, body) {
            Ok(n) => Ok(n),
            Err(e) => {
                Session::drain_inner(&self.inner);
                Err(e)
            }
        }
    }

    /// Blocks until a frame with `tag` arrives (earlier frames of other
    /// tags stay queued), the session drains, or `timeout` passes. Returns
    /// the frame body and its wire size.
    pub(crate) fn recv_frame(
        &self,
        tag: u8,
        timeout: Duration,
    ) -> Result<(Vec<u8>, u64), RecvError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.inner.queue.lock().expect("session queue poisoned");
        loop {
            if let Some(pos) = q.iter().position(|(t, _)| *t == tag) {
                let (_, body) = q.remove(pos).expect("position just found");
                let wire = FRAME_HEADER_BYTES + body.len() as u64;
                return Ok((body, wire));
            }
            if !self.is_live() {
                return Err(RecvError::Closed);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvError::TimedOut);
            }
            let (guard, _) = self
                .inner
                .cv
                .wait_timeout(q, deadline - now)
                .expect("session queue poisoned");
            q = guard;
        }
    }

    /// Force-closes the socket (shutdown paths); the reader thread drains
    /// the session on the resulting EOF.
    pub(crate) fn close(&self) {
        Session::drain_inner(&self.inner);
        self.closer.shutdown_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transition_table() {
        use SessionState::*;
        assert!(Handshake.can_transition(Registered));
        assert!(Registered.can_transition(InRound));
        assert!(InRound.can_transition(Registered));
        for s in [Handshake, Registered, InRound] {
            assert!(s.can_transition(Draining), "{} must drain", s.name());
        }
        // Draining is terminal, and no state re-enters handshake.
        for s in [Handshake, Registered, InRound, Draining] {
            assert!(!Draining.can_transition(s));
            assert!(!s.can_transition(Handshake));
        }
        assert!(
            !Handshake.can_transition(InRound),
            "no training unregistered"
        );
    }
}
