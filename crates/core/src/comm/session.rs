//! Per-connection server-side session: a small state machine over one
//! client's socket.
//!
//! Every accepted connection walks `Handshake → Registered`, oscillates
//! `Registered ↔ InRound` while the round loop runs, and ends in `Draining`
//! — either gracefully (the client sent [`ControlMsg::Goodbye`]) or because
//! the link died. A draining session never delivers again: every later send
//! or receive on it reports a deterministic [`DropReason::Loss`], which is
//! exactly how the in-memory fault models describe a lost client, so the
//! round loop's churn handling is identical across backends.
//!
//! I/O is reactor-driven: the owning [`reactor`](super::reactor) shard
//! drains the socket into this session's tag-indexed frame queue and
//! flushes the connection's bounded write queue. A send here only *queues*
//! a pre-encoded frame (blocking briefly under backpressure); a receive
//! pops from the frame queue under a bounded condvar wait, so a hung client
//! can never wedge the server.
//!
//! [`ControlMsg::Goodbye`]: super::message::ControlMsg::Goodbye
//! [`DropReason::Loss`]: super::message::DropReason::Loss

use super::reactor::{ConnShared, EnqueueError};
use super::socket::encode_frame;
use std::collections::VecDeque;
use std::io;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Lifecycle of one client connection, as seen by the server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionState {
    /// Connected, `Hello` not yet validated.
    Handshake,
    /// Registered and idle between rounds.
    Registered,
    /// A `TrainStart` is outstanding; the client owes a report + upload.
    InRound,
    /// The client left (goodbye, error, or replacement); terminal.
    Draining,
}

impl SessionState {
    /// Whether the machine may move from `self` to `to`. `Draining` is
    /// terminal: a reconnect creates a *new* session rather than reviving
    /// the drained one.
    pub fn can_transition(self, to: SessionState) -> bool {
        use SessionState::*;
        matches!(
            (self, to),
            (Handshake, Registered)
                | (Registered, InRound)
                | (InRound, Registered)
                | (Handshake, Draining)
                | (Registered, Draining)
                | (InRound, Draining)
        )
    }

    pub fn name(self) -> &'static str {
        match self {
            SessionState::Handshake => "handshake",
            SessionState::Registered => "registered",
            SessionState::InRound => "in_round",
            SessionState::Draining => "draining",
        }
    }
}

/// Why a blocking receive returned no frame.
#[derive(Debug)]
pub(crate) enum RecvError {
    /// The session is draining (goodbye, dead link, or replaced).
    Closed,
    /// No matching frame arrived within the wait bound.
    TimedOut,
}

/// One registered client connection: the round loop's handle onto a
/// reactor-owned socket. Sends enqueue onto the connection's bounded write
/// queue; receives pop from the frame queue the reactor fills.
pub(crate) struct Session {
    state: Mutex<SessionState>,
    /// Received frames, newest last, not yet claimed by the round loop.
    queue: Mutex<VecDeque<(u8, Vec<u8>)>>,
    cv: Condvar,
    conn: Arc<ConnShared>,
}

impl Session {
    /// Wraps an already-handshaken reactor connection in a `Registered`
    /// session.
    pub(crate) fn new(conn: Arc<ConnShared>) -> Arc<Session> {
        Arc::new(Session {
            state: Mutex::new(SessionState::Registered),
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            conn,
        })
    }

    /// Marks the session terminal and wakes blocked receivers. Reactor- and
    /// transport-side close paths both funnel through here.
    pub(crate) fn drain(&self) {
        *self.state.lock().expect("session state poisoned") = SessionState::Draining;
        self.cv.notify_all();
    }

    pub(crate) fn state(&self) -> SessionState {
        *self.state.lock().expect("session state poisoned")
    }

    /// Moves the machine to `to` if the transition is legal; draining wins
    /// every race (a goodbye observed mid-transition sticks).
    pub(crate) fn set_state(&self, to: SessionState) {
        let mut st = self.state.lock().expect("session state poisoned");
        if st.can_transition(to) {
            *st = to;
        }
    }

    /// Whether the session can still carry traffic.
    pub(crate) fn is_live(&self) -> bool {
        self.state() != SessionState::Draining
    }

    /// Reactor-side delivery of one received frame.
    pub(crate) fn push_frame(&self, tag: u8, body: Vec<u8>) {
        let mut q = self.queue.lock().expect("session queue poisoned");
        q.push_back((tag, body));
        self.cv.notify_all();
    }

    /// Encodes and queues one frame; returns its wire bytes. See
    /// [`send_encoded`](Session::send_encoded) for the failure contract.
    pub(crate) fn send_frame(&self, tag: u8, body: &[u8], deadline: Instant) -> io::Result<u64> {
        self.send_encoded(&encode_frame(tag, body), deadline)
    }

    /// Queues one pre-encoded frame (the encode-once broadcast path shares
    /// a single `Arc<[u8]>` across every recipient); returns its wire
    /// bytes. Backpressure blocks until `deadline`; a queue that stays full
    /// past it means the link is effectively wedged, so the session drains
    /// and the connection closes — everything after a failed send is
    /// dropped, exactly like a dead link.
    pub(crate) fn send_encoded(&self, frame: &Arc<[u8]>, deadline: Instant) -> io::Result<u64> {
        if !self.is_live() {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "session draining",
            ));
        }
        match self.conn.enqueue(frame, Some(deadline)) {
            Ok(n) => Ok(n),
            Err(EnqueueError::Closed) => {
                self.drain();
                Err(io::Error::new(
                    io::ErrorKind::NotConnected,
                    "connection closed",
                ))
            }
            Err(EnqueueError::TimedOut) => {
                self.drain();
                self.conn.close();
                Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "write queue full past the send deadline",
                ))
            }
        }
    }

    /// Blocks until a frame with `tag` arrives (earlier frames of other
    /// tags stay queued), the session drains, or `timeout` passes. Returns
    /// the frame body and its wire size.
    pub(crate) fn recv_frame(
        &self,
        tag: u8,
        timeout: Duration,
    ) -> Result<(Vec<u8>, u64), RecvError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.queue.lock().expect("session queue poisoned");
        loop {
            if let Some(pos) = q.iter().position(|(t, _)| *t == tag) {
                let (_, body) = q.remove(pos).expect("position just found");
                let wire = super::socket::FRAME_HEADER_BYTES + body.len() as u64;
                return Ok((body, wire));
            }
            if !self.is_live() {
                return Err(RecvError::Closed);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvError::TimedOut);
            }
            let (guard, _) = self
                .cv
                .wait_timeout(q, deadline - now)
                .expect("session queue poisoned");
            q = guard;
        }
    }

    /// Non-blocking [`Session::recv_frame`]: claims a queued frame with
    /// `tag` if one has already completed in the reactor, reports a drained
    /// session as [`RecvError::Closed`], and otherwise returns `Ok(None)` —
    /// nothing yet, link still live. Arrival-order collection sweeps this
    /// across the round's sessions to fold whichever upload finished first.
    pub(crate) fn try_recv_frame(&self, tag: u8) -> Result<Option<(Vec<u8>, u64)>, RecvError> {
        let mut q = self.queue.lock().expect("session queue poisoned");
        if let Some(pos) = q.iter().position(|(t, _)| *t == tag) {
            let (_, body) = q.remove(pos).expect("position just found");
            let wire = super::socket::FRAME_HEADER_BYTES + body.len() as u64;
            return Ok(Some((body, wire)));
        }
        if !self.is_live() {
            return Err(RecvError::Closed);
        }
        Ok(None)
    }

    /// Hard close: drains the session and force-closes the socket (queued
    /// frames are dropped). The reactor reaps the connection on the next
    /// wakeup.
    pub(crate) fn close(&self) {
        self.drain();
        self.conn.close();
    }

    /// Graceful close: drains the session but lets the reactor flush
    /// already-queued frames (e.g. the `Shutdown` broadcast) before the
    /// socket closes.
    pub(crate) fn close_graceful(&self) {
        self.drain();
        self.conn.close_after_flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transition_table() {
        use SessionState::*;
        assert!(Handshake.can_transition(Registered));
        assert!(Registered.can_transition(InRound));
        assert!(InRound.can_transition(Registered));
        for s in [Handshake, Registered, InRound] {
            assert!(s.can_transition(Draining), "{} must drain", s.name());
        }
        // Draining is terminal, and no state re-enters handshake.
        for s in [Handshake, Registered, InRound, Draining] {
            assert!(!Draining.can_transition(s));
            assert!(!s.can_transition(Handshake));
        }
        assert!(
            !Handshake.can_transition(InRound),
            "no training unregistered"
        );
    }
}
