//! Event-driven socket server: a small number of sharded `poll(2)` loops
//! replace the accept thread and the per-session reader threads.
//!
//! Each shard owns a set of non-blocking connections and multiplexes them
//! through one `poll(2)` call: per-connection *read* state machines
//! reassemble `[len][tag][body]` frames across arbitrarily split reads, and
//! per-connection *write* state machines flush bounded FIFO queues of
//! pre-encoded frames with `writev(2)`, resuming mid-frame after partial
//! writes. Shard 0 additionally owns the listener and round-robins accepted
//! connections across shards. Cross-thread nudges (a frame enqueued by the
//! round loop, a shutdown request) land as one byte on the shard's self-pipe,
//! so nothing in the server sleep-polls.
//!
//! Backpressure: every connection's write queue is bounded
//! (`RFL_NET_WRITE_BUF` bytes, default 16 MiB). An enqueue that would
//! overflow the bound blocks the *sender* (the round loop) on a condvar
//! until the reactor drains space or the send deadline passes — a wedged
//! client costs one bounded wait, never unbounded server memory. Broadcast
//! is encode-once: the transport encodes a frame into one `Arc<[u8]>` and
//! every recipient queues a refcount bump, not a copy.

use super::message::{ControlMsg, PROTO_MAGIC, PROTO_VERSION};
use super::session::Session;
use super::socket::{Listener, WireStream, MAX_FRAME_BYTES};
use super::sys;
use std::collections::VecDeque;
use std::io;
use std::os::fd::{AsRawFd, OwnedFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long a connection may sit between `accept` and a valid `Hello`.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// How long a stopping reactor keeps flushing queued frames (the `Shutdown`
/// broadcast) toward clients that have stopped reading before force-closing.
const STOP_FLUSH_GRACE: Duration = Duration::from_secs(5);

/// Reactor tuning, resolved once per server from the environment.
#[derive(Clone, Copy, Debug)]
pub(crate) struct NetConfig {
    /// Number of event-loop shards (`RFL_NET_THREADS`).
    pub threads: usize,
    /// Per-connection write-queue bound in bytes (`RFL_NET_WRITE_BUF`).
    pub write_buf: usize,
}

impl NetConfig {
    pub(crate) fn from_env() -> NetConfig {
        let default_threads = std::thread::available_parallelism()
            .map(|n| n.get().min(4))
            .unwrap_or(1);
        let threads = std::env::var("RFL_NET_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(default_threads);
        let write_buf = std::env::var("RFL_NET_WRITE_BUF")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n >= 4096)
            .unwrap_or(16 << 20);
        NetConfig { threads, write_buf }
    }
}

/// A FIFO of pre-encoded frames awaiting the wire, with partial-write
/// resume: [`gather`](WriteQueue::gather) exposes the unwritten tails as
/// `writev`-ready slices and [`advance`](WriteQueue::advance) consumes
/// however many bytes the kernel actually accepted, mid-frame or across
/// several frames. Frames are shared `Arc<[u8]>`s, so queueing one frame to
/// N connections costs N refcount bumps, not N copies.
#[derive(Default)]
pub struct WriteQueue {
    /// `(frame, offset)`: `offset` bytes of the front frame are already on
    /// the wire.
    segs: VecDeque<(Arc<[u8]>, usize)>,
    /// Total unwritten bytes across all segments.
    queued: usize,
}

impl WriteQueue {
    pub fn new() -> WriteQueue {
        WriteQueue::default()
    }

    /// Appends one encoded frame.
    pub fn push(&mut self, frame: Arc<[u8]>) {
        self.queued += frame.len();
        self.segs.push_back((frame, 0));
    }

    /// Unwritten bytes currently queued.
    pub fn pending_bytes(&self) -> usize {
        self.queued
    }

    pub fn is_empty(&self) -> bool {
        self.queued == 0
    }

    /// The unwritten tails of up to `max_slices` queued frames, in wire
    /// order — ready for one vectored write.
    pub fn gather(&self, max_slices: usize) -> Vec<&[u8]> {
        self.segs
            .iter()
            .take(max_slices)
            .map(|(frame, off)| &frame[*off..])
            .collect()
    }

    /// Consumes `n` bytes from the front of the queue (the bytes a write
    /// actually accepted), dropping fully written frames and recording the
    /// resume offset of a partially written one.
    ///
    /// # Panics
    /// If `n` exceeds [`pending_bytes`](WriteQueue::pending_bytes).
    pub fn advance(&mut self, mut n: usize) {
        assert!(n <= self.queued, "advanced past the queued bytes");
        self.queued -= n;
        while n > 0 {
            let (frame, off) = self.segs.front_mut().expect("bytes imply a segment");
            let remaining = frame.len() - *off;
            if n >= remaining {
                n -= remaining;
                self.segs.pop_front();
            } else {
                *off += n;
                n = 0;
            }
        }
    }
}

/// Wakes one shard's `poll(2)` by writing a byte to its self-pipe. Failure
/// is fine: a full pipe means a wakeup is already pending.
pub(crate) struct Waker {
    tx: OwnedFd,
}

impl Waker {
    pub(crate) fn wake(&self) {
        let _ = sys::write_fd(self.tx.as_raw_fd(), &[1]);
    }
}

/// Why an enqueue returned no bytes.
pub(crate) enum EnqueueError {
    /// The connection is closed (or closing); nothing will be delivered.
    Closed,
    /// The write queue stayed full past the sender's deadline.
    TimedOut,
}

struct QueueState {
    q: WriteQueue,
    /// Accepting new frames. Cleared by both close paths.
    open: bool,
    /// Flush what is queued, then close (graceful shutdown).
    close_after_flush: bool,
    capacity: usize,
}

/// What a flush attempt left behind.
enum FlushStatus {
    /// Nothing queued (and no pending close).
    Idle,
    /// The kernel buffer filled; poll for `POLLOUT`.
    WantWrite,
    /// Queue drained and a graceful close was requested.
    FlushedClose,
    /// The socket died mid-write.
    Dead,
}

/// The write half of one connection, shared between the reactor shard that
/// flushes it and the transport threads that enqueue into it.
pub(crate) struct ConnShared {
    state: Mutex<QueueState>,
    /// Signalled when the reactor drains queue space (backpressure waits).
    space: Condvar,
    waker: Arc<Waker>,
    /// A cloned stream handle used to force-close the socket from any
    /// thread; the reactor notices via `poll` and reaps the connection.
    closer: Box<dyn WireStream>,
    fd: RawFd,
}

impl ConnShared {
    /// Queues one encoded frame for delivery; returns its wire size.
    ///
    /// With a deadline (transport sends), a full queue blocks until space
    /// frees up or the deadline passes — backpressure lands on the sender,
    /// not on server memory. Without one (reactor-internal sends, e.g. the
    /// `Welcome`), the frame is queued unconditionally: the reactor must
    /// never block on its own queues.
    pub(crate) fn enqueue(
        &self,
        frame: &Arc<[u8]>,
        deadline: Option<Instant>,
    ) -> Result<u64, EnqueueError> {
        let mut st = self.state.lock().expect("write queue poisoned");
        loop {
            if !st.open {
                return Err(EnqueueError::Closed);
            }
            let fits = st.q.is_empty() || st.q.pending_bytes() + frame.len() <= st.capacity;
            let Some(deadline) = deadline else {
                st.q.push(frame.clone());
                drop(st);
                self.waker.wake();
                return Ok(frame.len() as u64);
            };
            if fits {
                st.q.push(frame.clone());
                drop(st);
                self.waker.wake();
                return Ok(frame.len() as u64);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(EnqueueError::TimedOut);
            }
            let (guard, _) = self
                .space
                .wait_timeout(st, deadline - now)
                .expect("write queue poisoned");
            st = guard;
        }
    }

    /// Hard close: drop queued frames, refuse new ones, and force the
    /// socket down so the owning shard reaps the connection.
    pub(crate) fn close(&self) {
        let mut st = self.state.lock().expect("write queue poisoned");
        st.open = false;
        st.q = WriteQueue::new();
        drop(st);
        self.space.notify_all();
        self.closer.shutdown_now();
        self.waker.wake();
    }

    /// Graceful close: refuse new frames, flush what is queued, then close.
    pub(crate) fn close_after_flush(&self) {
        let mut st = self.state.lock().expect("write queue poisoned");
        st.open = false;
        st.close_after_flush = true;
        drop(st);
        self.space.notify_all();
        self.waker.wake();
    }

    /// Reactor-side: mark the queue closed when the connection is reaped so
    /// blocked senders fail fast instead of waiting out their deadline.
    fn mark_dead(&self) {
        let mut st = self.state.lock().expect("write queue poisoned");
        st.open = false;
        st.q = WriteQueue::new();
        drop(st);
        self.space.notify_all();
    }

    /// Whether the shard must poll this connection for writability.
    fn wants_write(&self) -> bool {
        let st = self.state.lock().expect("write queue poisoned");
        !st.q.is_empty() || st.close_after_flush
    }

    /// Reactor-side: write as much of the queue as the kernel will take,
    /// one `writev` gather at a time, resuming partial writes.
    fn flush(&self) -> FlushStatus {
        let mut st = self.state.lock().expect("write queue poisoned");
        loop {
            if st.q.is_empty() {
                return if st.close_after_flush {
                    FlushStatus::FlushedClose
                } else {
                    FlushStatus::Idle
                };
            }
            let wrote = {
                let slices = st.q.gather(sys::MAX_IOV);
                sys::writev_fd(self.fd, &slices)
            };
            match wrote {
                Ok(n) => {
                    st.q.advance(n);
                    self.space.notify_all();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return FlushStatus::WantWrite,
                Err(_) => return FlushStatus::Dead,
            }
        }
    }
}

/// The cross-thread face of one shard: its waker plus an inbox of freshly
/// accepted connections waiting to be adopted into the shard's poll set.
pub(crate) struct ShardHandle {
    pub(crate) waker: Arc<Waker>,
    inbox: Mutex<Vec<Box<dyn WireStream>>>,
}

/// Server state shared between the transport (round loop) and the reactor
/// shards.
pub(crate) struct ServerShared {
    /// `sessions[k]` is client `k`'s live session, if any.
    pub(crate) sessions: Mutex<Vec<Option<Arc<Session>>>>,
    pub(crate) registration: Condvar,
    /// Reconnects observed at handshake — reported as
    /// [`FaultStats::retries`](super::message::FaultStats::retries), the
    /// same History/CSV column the in-memory fault model uses for
    /// retransmissions.
    pub(crate) reconnects: AtomicU64,
    pub(crate) stop: AtomicBool,
    /// Handshake wire bytes, folded into the ledger at the next round
    /// boundary (the reactor cannot touch [`super::stats::CommStats`]
    /// directly).
    pub(crate) pending_up: AtomicU64,
    pub(crate) pending_down: AtomicU64,
    pub(crate) pending_msgs: AtomicU64,
    /// The pre-encoded `Welcome` frame, queued verbatim to every client.
    pub(crate) welcome_frame: Arc<[u8]>,
    pub(crate) n_clients: usize,
    pub(crate) seed: u64,
    pub(crate) write_buf: usize,
    pub(crate) shards: Vec<Arc<ShardHandle>>,
}

impl ServerShared {
    /// Wakes every shard (stop requests, queued shutdown frames).
    pub(crate) fn wake_all(&self) {
        for shard in &self.shards {
            shard.waker.wake();
        }
    }
}

/// Creates the shard handles plus the matching self-pipe read ends (one
/// per shard thread).
pub(crate) fn build_shards(n: usize) -> io::Result<(Vec<Arc<ShardHandle>>, Vec<OwnedFd>)> {
    let mut handles = Vec::with_capacity(n);
    let mut rx_ends = Vec::with_capacity(n);
    for _ in 0..n {
        let (rx, tx) = sys::pipe_nonblocking()?;
        handles.push(Arc::new(ShardHandle {
            waker: Arc::new(Waker { tx }),
            inbox: Mutex::new(Vec::new()),
        }));
        rx_ends.push(rx);
    }
    Ok((handles, rx_ends))
}

/// Spawns one event-loop thread per shard; shard 0 owns the listener.
pub(crate) fn spawn_shards(
    listener: Listener,
    shared: &Arc<ServerShared>,
    rx_ends: Vec<OwnedFd>,
) -> io::Result<Vec<std::thread::JoinHandle<()>>> {
    let mut threads = Vec::with_capacity(rx_ends.len());
    let mut listener = Some(listener);
    for (idx, wake_rx) in rx_ends.into_iter().enumerate() {
        let shard = Shard {
            idx,
            wake_rx,
            listener: if idx == 0 { listener.take() } else { None },
            shared: shared.clone(),
            conns: Vec::new(),
            next_rr: 0,
            stop_deadline: None,
        };
        threads.push(
            std::thread::Builder::new()
                .name(format!("rfl-net-{idx}"))
                .spawn(move || shard.run())?,
        );
    }
    Ok(threads)
}

/// Read-side frame reassembly: `[u32 le len][u8 tag]` header, then the
/// body, each accumulated across arbitrarily split non-blocking reads.
struct FrameReader {
    header: [u8; 5],
    header_have: usize,
    body: Vec<u8>,
    body_have: usize,
    in_body: bool,
}

enum ReadStep {
    Frame(u8, Vec<u8>),
    WouldBlock,
    Eof,
    Corrupt,
}

impl FrameReader {
    fn new() -> FrameReader {
        FrameReader {
            header: [0; 5],
            header_have: 0,
            body: Vec::new(),
            body_have: 0,
            in_body: false,
        }
    }

    /// Advances the state machine by at most one complete frame.
    fn step(&mut self, fd: RawFd) -> ReadStep {
        if !self.in_body {
            while self.header_have < self.header.len() {
                match sys::read_fd(fd, &mut self.header[self.header_have..]) {
                    Ok(0) => return ReadStep::Eof,
                    Ok(n) => self.header_have += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ReadStep::WouldBlock,
                    Err(_) => return ReadStep::Corrupt,
                }
            }
            let len = u32::from_le_bytes(self.header[..4].try_into().expect("4 bytes")) as usize;
            if len > MAX_FRAME_BYTES {
                return ReadStep::Corrupt;
            }
            self.body = vec![0; len];
            self.body_have = 0;
            self.in_body = true;
        }
        while self.body_have < self.body.len() {
            match sys::read_fd(fd, &mut self.body[self.body_have..]) {
                Ok(0) => return ReadStep::Eof,
                Ok(n) => self.body_have += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ReadStep::WouldBlock,
                Err(_) => return ReadStep::Corrupt,
            }
        }
        let tag = self.header[4];
        let body = std::mem::take(&mut self.body);
        self.header_have = 0;
        self.body_have = 0;
        self.in_body = false;
        ReadStep::Frame(tag, body)
    }
}

enum Phase {
    /// Accepted; `Hello` not yet validated.
    Handshake { deadline: Instant },
    /// Registered: frames route to the session's receive queue.
    Open { session: Arc<Session> },
}

struct Conn {
    /// Owns the socket; dropped when the connection is reaped.
    stream: Box<dyn WireStream>,
    fd: RawFd,
    shared: Arc<ConnShared>,
    phase: Phase,
    reader: FrameReader,
    alive: bool,
}

struct Shard {
    idx: usize,
    wake_rx: OwnedFd,
    listener: Option<Listener>,
    shared: Arc<ServerShared>,
    conns: Vec<Conn>,
    /// Round-robin cursor for distributing accepted connections (shard 0).
    next_rr: usize,
    stop_deadline: Option<Instant>,
}

impl Shard {
    fn run(mut self) {
        let mut pollfds: Vec<sys::PollFd> = Vec::new();
        loop {
            let stopping = self.shared.stop.load(Ordering::Relaxed);
            if stopping {
                self.listener = None;
                let deadline = *self
                    .stop_deadline
                    .get_or_insert_with(|| Instant::now() + STOP_FLUSH_GRACE);
                // Handshakes can't complete on a stopped server, and past
                // the grace deadline even graceful closes go hard.
                for conn in &mut self.conns {
                    let expired = Instant::now() >= deadline;
                    if matches!(conn.phase, Phase::Handshake { .. }) || expired {
                        conn.alive = false;
                    }
                }
                self.reap();
                if self.conns.is_empty() {
                    break;
                }
            }

            pollfds.clear();
            pollfds.push(sys::PollFd::new(self.wake_rx.as_raw_fd(), sys::POLLIN));
            let listener_slot = self.listener.as_ref().map(|l| {
                pollfds.push(sys::PollFd::new(l.raw_fd(), sys::POLLIN));
                pollfds.len() - 1
            });
            let conn_base = pollfds.len();
            for conn in &self.conns {
                let mut events = sys::POLLIN;
                if conn.shared.wants_write() {
                    events |= sys::POLLOUT;
                }
                pollfds.push(sys::PollFd::new(conn.fd, events));
            }

            let timeout_ms = self.poll_timeout_ms(stopping);
            if sys::poll_fds(&mut pollfds, timeout_ms).is_err() {
                // Only catastrophic poll failures land here (EINTR is
                // retried); treat them as a stop request.
                self.shared.stop.store(true, Ordering::Relaxed);
                continue;
            }

            if pollfds[0].revents & sys::POLLIN != 0 {
                self.drain_wake_pipe();
            }
            if let Some(slot) = listener_slot {
                if pollfds[slot].revents & (sys::POLLIN | sys::POLLERR) != 0 {
                    self.accept_ready();
                }
            }
            self.adopt_inbox();

            for (i, conn) in self.conns.iter_mut().enumerate() {
                // Connections adopted after the pollfd snapshot have no
                // revents yet; they are serviced on the next iteration.
                let Some(pfd) = pollfds.get(conn_base + i) else {
                    break;
                };
                debug_assert_eq!(pfd.fd, conn.fd, "pollfd/conn order diverged");
                if pfd.revents & (sys::POLLERR | sys::POLLNVAL) != 0 {
                    conn.alive = false;
                    continue;
                }
                if pfd.revents & (sys::POLLIN | sys::POLLHUP) != 0 {
                    Shard::service_read(&self.shared, conn);
                }
            }
            self.service_writes();
            self.expire_handshakes();
            self.reap();
        }
    }

    fn poll_timeout_ms(&self, stopping: bool) -> i32 {
        if stopping {
            return 50;
        }
        // Only pending handshake deadlines need a timed wakeup; everything
        // else arrives as readiness or a self-pipe nudge.
        let now = Instant::now();
        self.conns
            .iter()
            .filter_map(|c| match c.phase {
                Phase::Handshake { deadline } => {
                    Some(deadline.saturating_duration_since(now).as_millis() as i32 + 1)
                }
                Phase::Open { .. } => None,
            })
            .min()
            .map_or(-1, |ms| ms.clamp(1, 1000))
    }

    fn drain_wake_pipe(&self) {
        let mut buf = [0u8; 64];
        while matches!(sys::read_fd(self.wake_rx.as_raw_fd(), &mut buf), Ok(n) if n > 0) {}
    }

    /// Shard 0: accept everything pending and deal connections round-robin
    /// across shards.
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.try_accept() {
                Ok(Some(stream)) => {
                    let target = self.next_rr % self.shared.shards.len();
                    self.next_rr = self.next_rr.wrapping_add(1);
                    if target == self.idx {
                        self.adopt(stream);
                    } else {
                        let shard = &self.shared.shards[target];
                        shard
                            .inbox
                            .lock()
                            .expect("shard inbox poisoned")
                            .push(stream);
                        shard.waker.wake();
                    }
                }
                Ok(None) => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // A fatal accept error (e.g. EMFILE storm): stop accepting
                // rather than spinning on a hot listener.
                Err(_) => {
                    self.listener = None;
                    return;
                }
            }
        }
    }

    fn adopt_inbox(&mut self) {
        let pending = {
            let mut inbox = self.shared.shards[self.idx]
                .inbox
                .lock()
                .expect("shard inbox poisoned");
            std::mem::take(&mut *inbox)
        };
        for stream in pending {
            self.adopt(stream);
        }
    }

    /// Wraps a freshly accepted (already non-blocking) stream into a
    /// handshaking connection in this shard's poll set.
    fn adopt(&mut self, stream: Box<dyn WireStream>) {
        let Ok(closer) = stream.try_clone_stream() else {
            return;
        };
        let fd = stream.raw_fd();
        let shared = Arc::new(ConnShared {
            state: Mutex::new(QueueState {
                q: WriteQueue::new(),
                open: true,
                close_after_flush: false,
                capacity: self.shared.write_buf,
            }),
            space: Condvar::new(),
            waker: self.shared.shards[self.idx].waker.clone(),
            closer,
            fd,
        });
        self.conns.push(Conn {
            stream,
            fd,
            shared,
            phase: Phase::Handshake {
                deadline: Instant::now() + HANDSHAKE_TIMEOUT,
            },
            reader: FrameReader::new(),
            alive: true,
        });
    }

    /// Pulls every complete frame the socket has for us and dispatches by
    /// phase.
    fn service_read(server: &Arc<ServerShared>, conn: &mut Conn) {
        while conn.alive {
            match conn.reader.step(conn.fd) {
                ReadStep::Frame(tag, body) => Shard::dispatch_frame(server, conn, tag, body),
                ReadStep::WouldBlock => return,
                ReadStep::Eof | ReadStep::Corrupt => {
                    conn.alive = false;
                }
            }
        }
    }

    fn dispatch_frame(server: &Arc<ServerShared>, conn: &mut Conn, tag: u8, body: Vec<u8>) {
        match &conn.phase {
            Phase::Handshake { .. } => {
                if Shard::complete_handshake(server, conn, tag, &body).is_err() {
                    conn.alive = false;
                }
            }
            Phase::Open { session } => {
                if tag == ControlMsg::Goodbye.tag() {
                    // A graceful departure drains the session: every later
                    // send or receive on it is a deterministic Loss.
                    session.drain();
                    conn.alive = false;
                } else {
                    session.push_frame(tag, body);
                }
            }
        }
    }

    /// Validates a `Hello`, registers the session, and queues the shared
    /// pre-encoded `Welcome` frame. Any protocol violation closes the
    /// connection without a session ever existing.
    fn complete_handshake(
        server: &Arc<ServerShared>,
        conn: &mut Conn,
        tag: u8,
        body: &[u8],
    ) -> Result<(), ()> {
        let hello = ControlMsg::decode_body(tag, body).map_err(|_| ())?;
        let ControlMsg::Hello {
            magic,
            version,
            client_id,
            seed,
        } = hello
        else {
            return Err(());
        };
        let id = client_id as usize;
        if magic != PROTO_MAGIC
            || version != PROTO_VERSION
            || id >= server.n_clients
            || seed != server.seed
        {
            return Err(());
        }
        let hello_bytes = super::socket::FRAME_HEADER_BYTES + body.len() as u64;
        // Register the session *before* queueing the welcome: a client that
        // holds its Welcome must already be visible to wait_for_clients.
        let session = Session::new(conn.shared.clone());
        conn.phase = Phase::Open {
            session: session.clone(),
        };
        {
            let mut sessions = server.sessions.lock().expect("sessions poisoned");
            if let Some(old) = sessions[id].replace(session) {
                // A returning client: the old link is superseded. Count it
                // as a retry (the reconnect IS the retransmission budget of
                // this backend) and force the stale connection out.
                server.reconnects.fetch_add(1, Ordering::Relaxed);
                old.close();
            }
        }
        let welcome_bytes = conn
            .shared
            .enqueue(&server.welcome_frame, None)
            .map_err(|_| ())?;
        server.pending_up.fetch_add(hello_bytes, Ordering::Relaxed);
        server
            .pending_down
            .fetch_add(welcome_bytes, Ordering::Relaxed);
        server.pending_msgs.fetch_add(2, Ordering::Relaxed);
        server.registration.notify_all();
        Ok(())
    }

    /// Flushes every connection with queued bytes (cheap no-op otherwise)
    /// and applies flush outcomes.
    fn service_writes(&mut self) {
        for conn in &mut self.conns {
            if !conn.alive {
                continue;
            }
            match conn.shared.flush() {
                FlushStatus::Idle | FlushStatus::WantWrite => {}
                FlushStatus::FlushedClose | FlushStatus::Dead => conn.alive = false,
            }
        }
    }

    fn expire_handshakes(&mut self) {
        let now = Instant::now();
        for conn in &mut self.conns {
            if let Phase::Handshake { deadline } = conn.phase {
                if now >= deadline {
                    conn.alive = false;
                }
            }
        }
    }

    /// Drops reaped connections: the write queue is marked dead (blocked
    /// senders fail fast), the session drains, and the socket force-closes
    /// so the peer observes EOF rather than a stall.
    fn reap(&mut self) {
        self.conns.retain(|conn| {
            if conn.alive {
                return true;
            }
            conn.shared.mark_dead();
            if let Phase::Open { session } = &conn.phase {
                session.drain();
            }
            conn.stream.shutdown_now();
            false
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(tag: u8, body: &[u8]) -> Arc<[u8]> {
        super::super::socket::encode_frame(tag, body)
    }

    #[test]
    fn write_queue_tracks_offsets_across_partial_writes() {
        let mut q = WriteQueue::new();
        q.push(frame(1, b"abc")); // 8 bytes on the wire
        q.push(frame(2, b"")); // 5 bytes
        assert_eq!(q.pending_bytes(), 13);
        // Partial write inside the first frame.
        q.advance(3);
        assert_eq!(q.pending_bytes(), 10);
        let slices = q.gather(16);
        assert_eq!(slices.len(), 2);
        assert_eq!(slices[0].len(), 5);
        // A write spanning the frame boundary.
        q.advance(7);
        assert_eq!(q.pending_bytes(), 3);
        assert_eq!(q.gather(16).len(), 1);
        q.advance(3);
        assert!(q.is_empty());
        assert!(q.gather(16).is_empty());
    }

    #[test]
    #[should_panic(expected = "advanced past the queued bytes")]
    fn write_queue_rejects_overadvance() {
        let mut q = WriteQueue::new();
        q.push(frame(1, b"x"));
        q.advance(7);
    }

    #[test]
    fn gather_respects_slice_cap() {
        let mut q = WriteQueue::new();
        for i in 0..10 {
            q.push(frame(i, &[i]));
        }
        assert_eq!(q.gather(4).len(), 4);
        assert_eq!(q.gather(64).len(), 10);
    }

    #[test]
    fn net_config_defaults_are_sane() {
        let cfg = NetConfig::from_env();
        assert!(cfg.threads >= 1);
        assert!(cfg.write_buf >= 4096);
    }
}
