//! The pluggable transport abstraction.
//!
//! Algorithms and the [`crate::Federation`] round plumbing send typed
//! envelopes ([`MsgKind`] + payload) and consume [`Delivery`] outcomes; the
//! *delivery semantics* — perfect, lossy, delayed — live entirely behind
//! this trait. [`PerfectTransport`] wraps the metered [`Channel`] and is
//! bit- and byte-identical to the pre-transport code path;
//! [`crate::comm::FaultyTransport`] adds seeded per-link faults.

use super::channel::Channel;
use super::message::{BroadcastDelivery, Delivery, FaultStats, LinkOutcome, MsgKind};
use super::stats::{CommStats, Direction};
use crate::client::LocalReport;
use crate::compress::CompressedVec;

/// A simulated network between the server and its clients.
///
/// All sends are synchronous from the caller's perspective (this is a
/// simulation — "latency" is virtual time used by fault models, not a real
/// delay). Implementations must be deterministic: the same construction
/// parameters and call sequence must produce the same outcomes regardless
/// of thread budget or wall clock.
pub trait Transport: Send {
    /// Marks the start of communication round `round`. Fault models use
    /// this to reset per-round state (virtual clocks, deadlines).
    fn begin_round(&mut self, round: u64);

    /// Sends `payload` on the link of `client`; direction and accounting
    /// plane follow from `kind`. Returns the received copy on delivery.
    fn send(&mut self, kind: MsgKind, client: usize, payload: &[f32]) -> Delivery;

    /// Sends the same `payload` to every client in `clients` (byte cost is
    /// charged per receiver; content is decoded once and shared).
    fn broadcast(&mut self, kind: MsgKind, clients: &[usize], payload: &[f32])
        -> BroadcastDelivery;

    /// Charges a message of `wire_bytes` whose payload carries its own wire
    /// format; no scalar payload crosses here. Only the compressed-payload
    /// kinds ([`MsgKind::is_compressed`]) pre-encode their own frames, so
    /// implementations debug-assert that `kind` is one of them — a raw
    /// charge under a dense kind would book bytes the codec never metered.
    fn send_raw(&mut self, kind: MsgKind, client: usize, wire_bytes: u64) -> LinkOutcome;

    /// Sends a compressed payload on the link of `client`. The payload is
    /// framed with its exact `CompressedVec` encoding, the ledger is charged
    /// the true encoded byte count (`payload.wire_bytes()` per attempt), and
    /// on delivery the received copy is decoded bit-exactly into `out`,
    /// reusing its section buffers.
    fn send_compressed(
        &mut self,
        kind: MsgKind,
        client: usize,
        payload: &CompressedVec,
        out: &mut CompressedVec,
    ) -> LinkOutcome;

    /// The byte/message ledger.
    fn stats(&self) -> &CommStats;

    /// Message-level fault counters (all zeros for a perfect transport).
    fn fault_stats(&self) -> FaultStats;

    /// The remote half of a distributed backend, when this transport moves
    /// traffic to real client processes instead of simulating them.
    /// In-memory backends return `None` (the default); a
    /// [`crate::Federation`] in remote mode requires `Some`.
    fn as_remote(&mut self) -> Option<&mut dyn RemoteTransport> {
        None
    }
}

/// The server-side operations a *distributed* deployment needs beyond
/// [`Transport`]: in the simulation, uploads and training are faked locally
/// (`send(ModelUp, ..)` already knows the payload), but with real client
/// processes the server must *ask* for work and *wait* for the bytes. The
/// round plumbing calls these instead of touching local [`crate::Client`]s
/// when the federation runs in remote mode, so algorithms are oblivious to
/// which side of the wire their peers live on.
pub trait RemoteTransport {
    /// Blocks for `client`'s next upload on `kind`'s plane (an
    /// upload-direction [`MsgKind`]); meters the received wire bytes. A
    /// dead link maps to [`super::DropReason::Loss`], a receive timeout to
    /// [`super::DropReason::Deadline`] — the same vocabulary the in-memory
    /// fault models emit, so churn handling is backend-agnostic.
    fn recv(&mut self, kind: MsgKind, client: usize) -> Delivery;

    /// Non-blocking readiness probe on `client`'s `kind` plane:
    /// `Some(delivery)` resolves the upload *now* — a completed frame
    /// claimed off the queue, or a dead link mapped to a loss — while
    /// `None` means nothing has arrived yet and the link is still live.
    /// Arrival-order collection (`Federation::fold_uploads_unordered`)
    /// sweeps this across the selection so early finishers fold while
    /// stragglers upload. The default resolves by blocking: a transport
    /// with no readiness information degrades to in-order claiming.
    fn try_recv(&mut self, kind: MsgKind, client: usize) -> Option<Delivery> {
        Some(self.recv(kind, client))
    }

    /// Tells `client` to run `steps` local steps for `round`.
    fn start_training(&mut self, client: usize, round: u64, steps: usize) -> LinkOutcome;

    /// Blocks for `client`'s training report; `None` if the link died or
    /// timed out (the client sits the aggregation out).
    fn recv_report(&mut self, client: usize) -> Option<LocalReport>;

    /// Tells `client` to probe its δ map with `probe_batch`-sized batches
    /// and upload it.
    fn request_delta(&mut self, client: usize, round: u64, probe_batch: usize) -> LinkOutcome;

    /// Blocks for `client`'s next *compressed* upload (`kind` must satisfy
    /// [`MsgKind::is_compressed`]), decoding the frame into `out` and
    /// metering the received wire bytes exactly as charged.
    fn recv_compressed(
        &mut self,
        kind: MsgKind,
        client: usize,
        out: &mut CompressedVec,
    ) -> LinkOutcome;

    /// Ends the run: notifies clients, closes links, stops accepting.
    fn shutdown(&mut self);
}

/// The lossless, zero-latency transport: every send is delivered on the
/// first attempt, and the byte accounting is exactly the metered
/// [`Channel`]'s — the default, and the baseline every fault model is
/// validated against.
#[derive(Default)]
pub struct PerfectTransport {
    channel: Channel,
}

impl PerfectTransport {
    pub fn new() -> Self {
        PerfectTransport::default()
    }
}

impl Transport for PerfectTransport {
    fn begin_round(&mut self, _round: u64) {}

    fn send(&mut self, kind: MsgKind, _client: usize, payload: &[f32]) -> Delivery {
        let dir = kind.direction();
        let data = if kind.is_delta() {
            self.channel.transfer_delta(dir, payload)
        } else {
            self.channel.transfer(dir, payload)
        };
        Delivery {
            data: Some(data),
            attempts: 1,
            reason: None,
        }
    }

    fn broadcast(
        &mut self,
        kind: MsgKind,
        clients: &[usize],
        payload: &[f32],
    ) -> BroadcastDelivery {
        debug_assert_eq!(kind.direction(), Direction::Download, "broadcasts go down");
        let data = if kind.is_delta() {
            self.channel.broadcast_delta(clients.len(), payload)
        } else {
            self.channel.broadcast(clients.len(), payload)
        };
        BroadcastDelivery {
            data,
            links: vec![LinkOutcome::perfect(); clients.len()],
        }
    }

    fn send_raw(&mut self, kind: MsgKind, _client: usize, wire_bytes: u64) -> LinkOutcome {
        debug_assert!(
            kind.is_compressed(),
            "send_raw is for pre-encoded compressed payloads, got {kind:?}"
        );
        self.channel.record_raw(kind.direction(), wire_bytes);
        LinkOutcome::perfect()
    }

    fn send_compressed(
        &mut self,
        kind: MsgKind,
        _client: usize,
        payload: &CompressedVec,
        out: &mut CompressedVec,
    ) -> LinkOutcome {
        self.channel.transfer_compressed(kind, payload, out);
        LinkOutcome::perfect()
    }

    fn stats(&self) -> &CommStats {
        self.channel.stats()
    }

    fn fault_stats(&self) -> FaultStats {
        FaultStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_matches_channel_accounting() {
        let mut t = PerfectTransport::new();
        let mut ch = Channel::new();
        let v = vec![1.0f32, -2.0, 3.5];
        let d = t.send(MsgKind::ModelUp, 0, &v);
        let expect = ch.transfer(Direction::Upload, &v);
        assert_eq!(d.data.as_deref(), Some(expect.as_slice()));
        assert_eq!(d.attempts, 1);
        assert_eq!(t.stats().upload_bytes(), ch.stats().upload_bytes());
        assert_eq!(t.stats().messages(), ch.stats().messages());
    }

    #[test]
    fn delta_kinds_charge_the_delta_plane() {
        let mut t = PerfectTransport::new();
        t.send(MsgKind::DeltaUp, 2, &[1.0; 16]);
        t.broadcast(MsgKind::DeltaTableDown, &[0, 1, 2], &[0.5; 32]);
        assert_eq!(t.stats().delta_upload_bytes(), 4 + 64);
        assert_eq!(t.stats().delta_download_bytes(), 3 * (4 + 128));
        assert_eq!(t.stats().total_bytes(), t.stats().delta_bytes());
    }

    #[test]
    fn broadcast_charges_per_receiver_and_delivers_everywhere() {
        let mut t = PerfectTransport::new();
        let bd = t.broadcast(MsgKind::ModelDown, &[0, 3, 7], &[2.0; 10]);
        assert_eq!(bd.data, vec![2.0; 10]);
        assert_eq!(bd.delivered_clients(&[0, 3, 7]), vec![0, 3, 7]);
        assert_eq!(t.stats().download_bytes(), 3 * (4 + 40));
        // A broadcast is one logical message regardless of fan-out.
        assert_eq!(t.stats().messages(), 1);
    }

    #[test]
    fn control_kinds_are_model_plane() {
        let mut t = PerfectTransport::new();
        t.send(MsgKind::ControlUp, 0, &[1.0; 8]);
        t.broadcast(MsgKind::ControlDown, &[0, 1], &[1.0; 8]);
        assert_eq!(t.stats().delta_bytes(), 0);
        assert_eq!(t.stats().upload_bytes(), 4 + 32);
        assert_eq!(t.stats().download_bytes(), 2 * (4 + 32));
    }

    #[test]
    fn raw_sends_charge_without_payload() {
        let mut t = PerfectTransport::new();
        let out = t.send_raw(MsgKind::CompressedUp, 1, 123);
        assert!(out.delivered);
        assert_eq!(t.stats().upload_bytes(), 123);
    }

    /// `send_raw` is a ledger-only charge for payloads that carry their own
    /// wire encoding — that is only ever the compressed kinds. Charging a
    /// dense kind raw would book bytes the codec never produced, so debug
    /// builds reject the mismatched tag outright.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "pre-encoded compressed payloads")]
    fn raw_sends_reject_uncompressed_kinds() {
        let mut t = PerfectTransport::new();
        let _ = t.send_raw(MsgKind::ModelUp, 1, 123);
    }

    #[test]
    fn fault_stats_are_zero() {
        let mut t = PerfectTransport::new();
        t.send(MsgKind::ModelDown, 0, &[1.0]);
        assert_eq!(t.fault_stats(), FaultStats::default());
    }

    /// Tentpole pin: the ledger charge for a compressed send is exactly the
    /// payload's encoded frame length — `wire_bytes()` — and the received
    /// copy is the bit-exact codec round trip.
    #[test]
    fn compressed_sends_charge_the_exact_encoded_length() {
        use crate::compress::{Compressor, UniformQuantizer};
        let mut t = PerfectTransport::new();
        let payload = UniformQuantizer::new(8).compress(&[1.0f32, -2.0, 0.25, 7.5]);
        let mut wire = Vec::new();
        payload.encode_into(&mut wire);
        assert_eq!(wire.len(), payload.wire_bytes());

        let mut out = CompressedVec::default();
        let link = t.send_compressed(MsgKind::CompressedUp, 0, &payload, &mut out);
        assert!(link.delivered);
        assert_eq!(t.stats().upload_bytes(), payload.wire_bytes() as u64);
        assert_eq!(t.stats().delta_bytes(), 0);
        assert_eq!(t.stats().messages(), 1);
        assert_eq!(out.words_u32, payload.words_u32);
        assert_eq!(
            out.words_f32
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            payload
                .words_f32
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
        assert_eq!(out.bytes, payload.bytes);

        // δ-plane compressed uploads double-count into the δ counters,
        // exactly like dense δ transfers.
        let before = t.stats().upload_bytes();
        t.send_compressed(MsgKind::CompressedDeltaUp, 1, &payload, &mut out);
        assert_eq!(t.stats().delta_upload_bytes(), payload.wire_bytes() as u64);
        assert_eq!(
            t.stats().upload_bytes() - before,
            payload.wire_bytes() as u64
        );
    }
}
