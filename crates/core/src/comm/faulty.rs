//! Deterministic fault injection: a transport whose links drop, delay, and
//! retry.
//!
//! Every stochastic decision (loss, jitter) is a pure function of the
//! configured seed and the message's coordinates `(round, client, message
//! sequence, attempt)` — no shared RNG stream — so the fault schedule is
//! bit-reproducible at any thread budget and independent of wall clock.
//! Latency is *virtual* time: it never delays the simulation, it only feeds
//! the per-round deadline that turns a slow client into a dropout.

use super::message::{BroadcastDelivery, Delivery, DropReason, FaultStats, LinkOutcome, MsgKind};
use super::stats::{CommStats, Direction};
use super::transport::Transport;
use crate::compress::CompressedVec;
use rfl_tensor::{decode_f32_into, encode_f32_into};

/// Virtual per-message latency on a link, in simulated milliseconds:
/// `base + per_kb·(bytes/1024) + jitter·U[0,1)`.
#[derive(Clone, Copy, Debug)]
pub struct LatencyModel {
    /// Fixed per-message cost (propagation + handshake).
    pub base_ms: f64,
    /// Serialization cost per KiB of wire bytes.
    pub per_kb_ms: f64,
    /// Uniform jitter amplitude added on top.
    pub jitter_ms: f64,
}

impl LatencyModel {
    /// The zero-latency model (every message is instantaneous).
    pub fn zero() -> Self {
        LatencyModel {
            base_ms: 0.0,
            per_kb_ms: 0.0,
            jitter_ms: 0.0,
        }
    }

    /// A loose WAN-ish default: 20 ms floor, ~8 ms/KiB, 10 ms jitter.
    pub fn wan() -> Self {
        LatencyModel {
            base_ms: 20.0,
            per_kb_ms: 8.0,
            jitter_ms: 10.0,
        }
    }

    fn sample(&self, bytes: u64, jitter_u: f64) -> f64 {
        self.base_ms + self.per_kb_ms * (bytes as f64 / 1024.0) + self.jitter_ms * jitter_u
    }
}

/// Configuration of [`FaultyTransport`]. The default (`lossless`) settings
/// make it behave exactly like [`super::PerfectTransport`] — the
/// equivalence the cross-transport tests pin.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Seed of the fault schedule; same seed ⇒ same drops/latencies.
    pub seed: u64,
    /// Per-attempt probability that a transmission is lost on a link.
    pub drop_prob: f64,
    /// Retransmissions after a lost attempt (0 = no retries).
    pub max_retries: u32,
    /// Extra virtual latency per retransmission `i`: `backoff_ms · i`
    /// (linear backoff).
    pub backoff_ms: f64,
    /// Virtual latency of each attempt.
    pub latency: LatencyModel,
    /// Per-round virtual deadline per client: once a client's cumulative
    /// message time exceeds this, its remaining messages this round are
    /// dropped ([`DropReason::Deadline`]) — the straggler-as-dropout model.
    pub deadline_ms: Option<f64>,
}

impl FaultConfig {
    /// Zero loss, zero latency, no deadline — behaviorally identical to the
    /// perfect transport.
    pub fn lossless(seed: u64) -> Self {
        FaultConfig {
            seed,
            drop_prob: 0.0,
            max_retries: 0,
            backoff_ms: 0.0,
            latency: LatencyModel::zero(),
            deadline_ms: None,
        }
    }

    /// Lossy link with `drop_prob` per-attempt loss and `retries`
    /// retransmissions, no latency/deadline.
    pub fn lossy(seed: u64, drop_prob: f64, retries: u32) -> Self {
        assert!((0.0..=1.0).contains(&drop_prob), "drop_prob in [0, 1]");
        FaultConfig {
            drop_prob,
            max_retries: retries,
            ..FaultConfig::lossless(seed)
        }
    }

    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    pub fn with_deadline_ms(mut self, deadline: f64) -> Self {
        assert!(deadline > 0.0, "deadline must be positive");
        self.deadline_ms = Some(deadline);
        self
    }

    pub fn with_backoff_ms(mut self, backoff: f64) -> Self {
        self.backoff_ms = backoff;
        self
    }
}

/// SplitMix64 finalizer — the stateless mixer behind the fault schedule
/// (also used by [`crate::federation::StragglerModel`] for step draws).
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Salts separating the independent uniform draws of one attempt.
const SALT_DROP: u64 = 0x1;
const SALT_JITTER: u64 = 0x2;

/// A transport with per-link seeded faults: loss, latency, bounded retries
/// with linear backoff, and a per-round deadline.
///
/// Byte accounting charges every transmission *attempt* (retries cost real
/// bytes), but a logical message counts once in [`CommStats::messages`]
/// regardless of retries — mirroring how the perfect transport counts an
/// `n`-receiver broadcast as one message.
pub struct FaultyTransport {
    cfg: FaultConfig,
    stats: CommStats,
    faults: FaultStats,
    round: u64,
    /// Per-client virtual clock within the current round (ms).
    clocks: Vec<f64>,
    /// Per-client logical-message sequence number within the current round.
    seqs: Vec<u64>,
    /// Reusable wire buffer (bytes identical to the one-shot encoder).
    wire: Vec<u8>,
}

impl FaultyTransport {
    pub fn new(cfg: FaultConfig) -> Self {
        FaultyTransport {
            cfg,
            stats: CommStats::new(),
            faults: FaultStats::default(),
            round: 0,
            clocks: Vec::new(),
            seqs: Vec::new(),
            wire: Vec::new(),
        }
    }

    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// A client's accumulated virtual time in the current round (ms).
    pub fn client_clock_ms(&self, client: usize) -> f64 {
        self.clocks.get(client).copied().unwrap_or(0.0)
    }

    fn ensure_client(&mut self, client: usize) {
        if client >= self.clocks.len() {
            self.clocks.resize(client + 1, 0.0);
            self.seqs.resize(client + 1, 0);
        }
    }

    /// Uniform draw in [0, 1) from the message coordinates.
    fn unit(&self, client: usize, seq: u64, attempt: u32, salt: u64) -> f64 {
        let mut h = self.cfg.seed;
        h = mix64(h ^ self.round.wrapping_mul(0xA076_1D64_78BD_642F));
        h = mix64(h ^ (client as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB));
        h = mix64(h ^ seq.wrapping_mul(0x8EBC_6AF0_9C88_C6E3));
        h = mix64(h ^ (u64::from(attempt)).wrapping_mul(0x5895_99C5_5B5C_1FAF) ^ salt);
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Simulates one logical message of `wire_bytes` on `client`'s link.
    /// Returns the outcome and the number of transmission attempts charged.
    fn simulate_link(&mut self, client: usize, wire_bytes: u64) -> LinkOutcome {
        self.ensure_client(client);
        let seq = self.seqs[client];
        self.seqs[client] += 1;
        let max_attempts = self.cfg.max_retries + 1;
        let mut attempt = 0u32;
        let outcome = loop {
            attempt += 1;
            let jitter = self.unit(client, seq, attempt, SALT_JITTER);
            let mut lat = self.cfg.latency.sample(wire_bytes, jitter);
            lat += self.cfg.backoff_ms * f64::from(attempt - 1);
            self.clocks[client] += lat;
            if let Some(deadline) = self.cfg.deadline_ms {
                if self.clocks[client] > deadline {
                    // Arrives after the round closed: the sender is a
                    // dropout for the rest of this round, retrying is moot.
                    break LinkOutcome {
                        delivered: false,
                        attempts: attempt,
                        reason: Some(DropReason::Deadline),
                    };
                }
            }
            let lost = self.unit(client, seq, attempt, SALT_DROP) < self.cfg.drop_prob;
            if !lost {
                break LinkOutcome {
                    delivered: true,
                    attempts: attempt,
                    reason: None,
                };
            }
            if attempt >= max_attempts {
                break LinkOutcome {
                    delivered: false,
                    attempts: attempt,
                    reason: Some(DropReason::Loss),
                };
            }
        };
        self.faults.retries += u64::from(outcome.retries());
        if !outcome.delivered {
            self.faults.dropped += 1;
            if outcome.reason == Some(DropReason::Deadline) {
                self.faults.deadline_drops += 1;
            }
        }
        outcome
    }
}

impl Transport for FaultyTransport {
    fn begin_round(&mut self, round: u64) {
        self.round = round;
        self.clocks.iter_mut().for_each(|c| *c = 0.0);
        self.seqs.iter_mut().for_each(|s| *s = 0);
    }

    fn send(&mut self, kind: MsgKind, client: usize, payload: &[f32]) -> Delivery {
        encode_f32_into(&mut self.wire, payload);
        let wire = self.wire.len() as u64;
        let out = self.simulate_link(client, wire);
        let dir = kind.direction();
        let bytes = wire * u64::from(out.attempts);
        if kind.is_delta() {
            self.stats.record_delta(dir, bytes);
        } else {
            self.stats.record(dir, bytes);
        }
        let data = out.delivered.then(|| {
            let mut v = Vec::with_capacity(payload.len());
            decode_f32_into(&self.wire, &mut v).expect("codec round-trip cannot fail");
            v
        });
        Delivery {
            data,
            attempts: out.attempts,
            reason: out.reason,
        }
    }

    fn broadcast(
        &mut self,
        kind: MsgKind,
        clients: &[usize],
        payload: &[f32],
    ) -> BroadcastDelivery {
        debug_assert_eq!(kind.direction(), Direction::Download, "broadcasts go down");
        encode_f32_into(&mut self.wire, payload);
        let wire = self.wire.len() as u64;
        let mut links = Vec::with_capacity(clients.len());
        let mut attempts_total = 0u64;
        for &k in clients {
            let out = self.simulate_link(k, wire);
            attempts_total += u64::from(out.attempts);
            links.push(out);
        }
        // One logical message (matching the perfect transport's broadcast
        // accounting); bytes cover every per-link attempt.
        let bytes = wire * attempts_total;
        if kind.is_delta() {
            self.stats.record_delta(Direction::Download, bytes);
        } else {
            self.stats.record(Direction::Download, bytes);
        }
        let mut data = Vec::with_capacity(payload.len());
        decode_f32_into(&self.wire, &mut data).expect("codec round-trip cannot fail");
        BroadcastDelivery { data, links }
    }

    fn send_raw(&mut self, kind: MsgKind, client: usize, wire_bytes: u64) -> LinkOutcome {
        debug_assert!(
            kind.is_compressed(),
            "send_raw is for pre-encoded compressed payloads, got {kind:?}"
        );
        let out = self.simulate_link(client, wire_bytes);
        let dir = kind.direction();
        let bytes = wire_bytes * u64::from(out.attempts);
        if kind.is_delta() {
            self.stats.record_delta(dir, bytes);
        } else {
            self.stats.record(dir, bytes);
        }
        out
    }

    fn send_compressed(
        &mut self,
        kind: MsgKind,
        client: usize,
        payload: &CompressedVec,
        out: &mut CompressedVec,
    ) -> LinkOutcome {
        payload.encode_into(&mut self.wire);
        let wire = self.wire.len() as u64;
        debug_assert_eq!(wire as usize, payload.wire_bytes());
        let link = self.simulate_link(client, wire);
        // Every attempt carries the full encoded frame.
        let bytes = wire * u64::from(link.attempts);
        if kind.is_delta() {
            self.stats.record_delta(kind.direction(), bytes);
        } else {
            self.stats.record(kind.direction(), bytes);
        }
        if link.delivered {
            assert!(
                out.decode_from(&self.wire),
                "codec round-trip cannot fail on a well-formed payload"
            );
        }
        link
    }

    fn stats(&self) -> &CommStats {
        &self.stats
    }

    fn fault_stats(&self) -> FaultStats {
        self.faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Channel;

    #[test]
    fn lossless_matches_perfect_byte_accounting() {
        let mut t = FaultyTransport::new(FaultConfig::lossless(42));
        let mut ch = Channel::new();
        let v = vec![1.0f32; 50];
        let d = t.send(MsgKind::ModelUp, 0, &v);
        let expect = ch.transfer(Direction::Upload, &v);
        assert_eq!(d.data.as_deref(), Some(expect.as_slice()));
        let bd = t.broadcast(MsgKind::DeltaTableDown, &[0, 1, 2], &v);
        let expect_b = ch.broadcast_delta(3, &v);
        assert_eq!(bd.data, expect_b);
        assert!(bd.links.iter().all(|l| l.delivered && l.attempts == 1));
        assert_eq!(t.stats().upload_bytes(), ch.stats().upload_bytes());
        assert_eq!(t.stats().download_bytes(), ch.stats().download_bytes());
        assert_eq!(t.stats().delta_bytes(), ch.stats().delta_bytes());
        assert_eq!(t.stats().messages(), ch.stats().messages());
        assert_eq!(t.fault_stats(), FaultStats::default());
    }

    #[test]
    fn certain_loss_exhausts_bounded_retries() {
        let mut t = FaultyTransport::new(FaultConfig::lossy(0, 1.0, 2));
        let d = t.send(MsgKind::ModelUp, 3, &[1.0; 10]);
        assert!(!d.is_delivered());
        assert_eq!(d.attempts, 3, "1 attempt + 2 retries");
        assert_eq!(d.reason, Some(DropReason::Loss));
        // Every attempt costs wire bytes.
        assert_eq!(t.stats().upload_bytes(), 3 * (4 + 40));
        // ...but it is one logical message.
        assert_eq!(t.stats().messages(), 1);
        let f = t.fault_stats();
        assert_eq!((f.dropped, f.retries, f.deadline_drops), (1, 2, 0));
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = || {
            let mut t = FaultyTransport::new(FaultConfig::lossy(7, 0.4, 1));
            let mut outcomes = Vec::new();
            for round in 0..3u64 {
                t.begin_round(round);
                let bd = t.broadcast(MsgKind::ModelDown, &[0, 1, 2, 3], &[1.0; 20]);
                outcomes.push(bd.delivered_clients(&[0, 1, 2, 3]));
                for k in 0..4 {
                    let d = t.send(MsgKind::ModelUp, k, &[2.0; 20]);
                    outcomes.push(vec![usize::from(d.is_delivered()), d.attempts as usize]);
                }
            }
            (outcomes, t.stats().total_bytes(), t.fault_stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn schedule_varies_with_round_and_seed() {
        let schedule = |seed: u64, round: u64| -> Vec<bool> {
            let mut t = FaultyTransport::new(FaultConfig::lossy(seed, 0.5, 0));
            t.begin_round(round);
            (0..64)
                .map(|k| t.send(MsgKind::ModelUp, k, &[1.0; 4]).is_delivered())
                .collect()
        };
        assert_ne!(schedule(1, 0), schedule(1, 1), "rounds share a schedule");
        assert_ne!(schedule(1, 0), schedule(2, 0), "seeds share a schedule");
    }

    #[test]
    fn deadline_turns_accumulated_latency_into_dropout() {
        // 10 ms per message, 25 ms deadline: messages 1–2 arrive, the third
        // exceeds the deadline and drops; the clock resets next round.
        let cfg = FaultConfig::lossless(0)
            .with_latency(LatencyModel {
                base_ms: 10.0,
                per_kb_ms: 0.0,
                jitter_ms: 0.0,
            })
            .with_deadline_ms(25.0);
        let mut t = FaultyTransport::new(cfg);
        t.begin_round(0);
        assert!(t.send(MsgKind::ModelDown, 0, &[1.0]).is_delivered());
        assert!(t.send(MsgKind::ModelUp, 0, &[1.0]).is_delivered());
        let third = t.send(MsgKind::DeltaUp, 0, &[1.0]);
        assert!(!third.is_delivered());
        assert_eq!(third.reason, Some(DropReason::Deadline));
        assert_eq!(t.fault_stats().deadline_drops, 1);
        // Another client is unaffected (per-link clocks).
        assert!(t.send(MsgKind::ModelDown, 1, &[1.0]).is_delivered());
        t.begin_round(1);
        assert!(t.send(MsgKind::ModelDown, 0, &[1.0]).is_delivered());
    }

    #[test]
    fn backoff_accumulates_on_retries() {
        // Certain loss with retries: attempts at t=5, 5+5+3, ... (backoff 3).
        let cfg = FaultConfig {
            drop_prob: 1.0,
            max_retries: 2,
            backoff_ms: 3.0,
            ..FaultConfig::lossless(0)
        }
        .with_latency(LatencyModel {
            base_ms: 5.0,
            per_kb_ms: 0.0,
            jitter_ms: 0.0,
        });
        let mut t = FaultyTransport::new(cfg);
        t.send(MsgKind::ModelUp, 0, &[1.0]);
        // 3 attempts: 5 + (5+3) + (5+6) = 24 ms on the clock.
        assert!((t.client_clock_ms(0) - 24.0).abs() < 1e-9);
    }

    #[test]
    fn compressed_sends_charge_exact_frame_bytes_per_attempt() {
        use crate::compress::{Compressor, UniformQuantizer};
        let payload = UniformQuantizer::new(4).compress(&[0.5f32; 33]);
        let frame = payload.wire_bytes() as u64;

        // Lossless: one attempt, exact frame bytes, bit-exact round trip.
        let mut t = FaultyTransport::new(FaultConfig::lossless(3));
        let mut out = CompressedVec::default();
        let link = t.send_compressed(MsgKind::CompressedUp, 0, &payload, &mut out);
        assert!(link.delivered && link.attempts == 1);
        assert_eq!(t.stats().upload_bytes(), frame);
        assert_eq!(out.bytes, payload.bytes);
        assert_eq!(
            out.words_f32
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            payload
                .words_f32
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );

        // Certain loss: every attempt charges the full encoded frame, the
        // payload never arrives, and δ-plane kinds hit the δ counters.
        let mut t = FaultyTransport::new(FaultConfig::lossy(0, 1.0, 2));
        let link = t.send_compressed(MsgKind::CompressedDeltaUp, 1, &payload, &mut out);
        assert!(!link.delivered);
        assert_eq!(link.attempts, 3);
        assert_eq!(t.stats().upload_bytes(), 3 * frame);
        assert_eq!(t.stats().delta_upload_bytes(), 3 * frame);
        assert_eq!(t.stats().messages(), 1);
    }

    #[test]
    fn broadcast_charges_all_attempts_as_one_message() {
        let mut t = FaultyTransport::new(FaultConfig::lossy(11, 0.5, 3));
        let bd = t.broadcast(MsgKind::ModelDown, &[0, 1, 2, 3, 4, 5, 6, 7], &[1.0; 8]);
        let attempts: u64 = bd.links.iter().map(|l| u64::from(l.attempts)).sum();
        assert_eq!(t.stats().download_bytes(), (4 + 32) * attempts);
        assert_eq!(t.stats().messages(), 1);
        assert!(attempts >= 8);
    }
}
