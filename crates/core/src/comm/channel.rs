//! The simulated network channel.
//!
//! Every scalar vector that crosses the server↔client boundary goes through
//! [`Channel::transfer`], which *actually* serializes and deserializes it
//! with the `rfl-tensor` wire codec and charges the byte cost to the
//! [`CommStats`] counters. This guarantees the communication numbers in the
//! evaluation are measured, not estimated.

use super::message::MsgKind;
use super::stats::{CommStats, Direction};
use crate::compress::CompressedVec;
use rfl_tensor::{decode_f32_into, encode_f32_into};

/// A lossless, metered channel.
///
/// The wire buffer is owned by the channel and reused for every message
/// ([`rfl_tensor::encode_f32_into`] produces bytes identical to
/// `encode_f32_slice`, so the ledger cannot tell the difference); only the
/// received `Vec<f32>` copy handed to the caller is allocated per transfer.
#[derive(Default)]
pub struct Channel {
    stats: CommStats,
    wire: Vec<u8>,
}

impl Channel {
    pub fn new() -> Self {
        Channel::default()
    }

    fn encode(&mut self, payload: &[f32]) -> Vec<f32> {
        encode_f32_into(&mut self.wire, payload);
        let mut out = Vec::with_capacity(payload.len());
        decode_f32_into(&self.wire, &mut out).expect("codec round-trip cannot fail");
        out
    }

    /// Sends `payload` across the wire; returns the received copy.
    pub fn transfer(&mut self, dir: Direction, payload: &[f32]) -> Vec<f32> {
        let out = self.encode(payload);
        self.stats.record(dir, self.wire.len() as u64);
        out
    }

    /// Sends a δ map (regularizer state) — byte-counted separately so the
    /// Table III numbers can be extracted.
    pub fn transfer_delta(&mut self, dir: Direction, payload: &[f32]) -> Vec<f32> {
        let out = self.encode(payload);
        self.stats.record_delta(dir, self.wire.len() as u64);
        out
    }

    /// Charges the cost of a broadcast to `n` receivers without materializing
    /// `n` copies (the content is identical for every receiver).
    pub fn broadcast(&mut self, n: usize, payload: &[f32]) -> Vec<f32> {
        let out = self.encode(payload);
        self.stats
            .record(Direction::Download, self.wire.len() as u64 * n as u64);
        out
    }

    /// δ-plane broadcast to `n` receivers.
    pub fn broadcast_delta(&mut self, n: usize, payload: &[f32]) -> Vec<f32> {
        let out = self.encode(payload);
        self.stats
            .record_delta(Direction::Download, self.wire.len() as u64 * n as u64);
        out
    }

    /// Records a transfer whose payload is not a plain f32 slice
    /// (compressed messages carry their own wire format).
    pub(crate) fn record_raw(&mut self, dir: Direction, bytes: u64) {
        self.stats.record(dir, bytes);
    }

    /// Sends a [`CompressedVec`] across the wire: encodes it with the exact
    /// frame codec into the reused wire buffer, decodes the received copy
    /// into `out` (bit-exact, buffers reused), and charges the *encoded*
    /// byte count on `kind`'s plane. Returns the bytes charged.
    pub(crate) fn transfer_compressed(
        &mut self,
        kind: MsgKind,
        payload: &CompressedVec,
        out: &mut CompressedVec,
    ) -> u64 {
        payload.encode_into(&mut self.wire);
        let bytes = self.wire.len() as u64;
        debug_assert_eq!(bytes as usize, payload.wire_bytes());
        assert!(
            out.decode_from(&self.wire),
            "codec round-trip cannot fail on a well-formed payload"
        );
        if kind.is_delta() {
            self.stats.record_delta(kind.direction(), bytes);
        } else {
            self.stats.record(kind.direction(), bytes);
        }
        bytes
    }

    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    pub fn snapshot(&self) -> CommStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_is_lossless_and_metered() {
        let mut ch = Channel::new();
        let v = vec![1.0f32, -2.5, 3e7];
        let got = ch.transfer(Direction::Upload, &v);
        assert_eq!(got, v);
        assert_eq!(ch.stats().upload_bytes(), 4 + 12);
    }

    #[test]
    fn broadcast_charges_per_receiver() {
        let mut ch = Channel::new();
        ch.broadcast(10, &[0.0; 100]);
        assert_eq!(ch.stats().download_bytes(), 10 * (4 + 400));
    }

    #[test]
    fn delta_transfers_tracked_separately() {
        let mut ch = Channel::new();
        ch.transfer_delta(Direction::Upload, &[1.0; 64]);
        ch.broadcast_delta(3, &[1.0; 64]);
        assert_eq!(ch.stats().delta_bytes(), (4 + 256) * 4);
        assert_eq!(ch.stats().total_bytes(), ch.stats().delta_bytes());
    }
}
