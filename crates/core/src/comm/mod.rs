//! Byte-accurate communication simulation.
//!
//! The layer is split in two: [`Channel`]/[`CommStats`] meter bytes with the
//! real wire codec, and the [`Transport`] trait decides *delivery* — typed
//! envelopes ([`MsgKind`]) go in, [`Delivery`]/[`BroadcastDelivery`] outcomes
//! come out. [`PerfectTransport`] is the lossless default (byte-identical to
//! the bare channel); [`FaultyTransport`] injects seeded per-link drops,
//! virtual latency, bounded retries, and per-round deadlines.

mod channel;
mod faulty;
mod message;
mod stats;
mod transport;

pub(crate) use faulty::mix64;

pub use channel::Channel;
pub use faulty::{FaultConfig, FaultyTransport, LatencyModel};
pub use message::{BroadcastDelivery, Delivery, DropReason, FaultStats, LinkOutcome, MsgKind};
pub use stats::{CommStats, Direction};
pub use transport::{PerfectTransport, Transport};
