//! Byte-accurate communication simulation.

mod channel;
mod stats;

pub use channel::Channel;
pub use stats::{CommStats, Direction};
