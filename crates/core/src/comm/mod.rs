//! Byte-accurate communication: simulated and real.
//!
//! The layer is split in three: [`Channel`]/[`CommStats`] meter bytes with
//! the real wire codec, the [`Transport`] trait decides *delivery* — typed
//! envelopes ([`MsgKind`]) go in, [`Delivery`]/[`BroadcastDelivery`] outcomes
//! come out — and the socket layer moves the same frames over a real wire.
//! [`PerfectTransport`] is the lossless default (byte-identical to the bare
//! channel); [`FaultyTransport`] injects seeded per-link drops, virtual
//! latency, bounded retries, and per-round deadlines; [`SocketTransport`]
//! runs the server end of a multi-process federation over TCP or Unix-domain
//! sockets and reproduces the perfect transport bit-exactly on a loopback.

mod channel;
mod faulty;
mod message;
mod reactor;
mod session;
mod socket;
mod stats;
mod sys;
mod transport;

pub(crate) use faulty::mix64;

pub use channel::Channel;
pub use faulty::{FaultConfig, FaultyTransport, LatencyModel};
pub use message::{
    BroadcastDelivery, ControlMsg, Delivery, DropReason, FaultStats, LinkOutcome, MsgKind,
    WireError, PROTO_MAGIC, PROTO_VERSION,
};
pub use reactor::WriteQueue;
pub use session::SessionState;
pub use socket::run_client_loop;
pub use socket::{
    encode_frame, read_frame, write_frame, ClientConn, ClientEvent, ClientLoopOpts, ClientOutcome,
    Endpoint, SocketTransport, BACKOFF_CAP, FRAME_HEADER_BYTES, MAX_FRAME_BYTES,
};
pub use stats::{CommStats, Direction};
pub use transport::{PerfectTransport, RemoteTransport, Transport};
