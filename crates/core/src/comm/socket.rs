//! Real multi-process federation over sockets.
//!
//! This module promotes the [`Transport`] abstraction from in-memory
//! delivery to an actual wire: a length-prefixed framing layer over TCP or
//! Unix-domain sockets, speaking the *same* hand-rolled `bytes` codec as
//! the in-memory channel ([`rfl_tensor::encode_f32_into`]), so a payload's
//! bytes on the wire are exactly the bytes the simulation meters.
//!
//! Three pieces:
//!
//! * **Framing** — `[u32 le body_len][u8 tag][body]`. Payload frames carry
//!   a [`MsgKind`] tag and a codec-encoded `f32` vector; control frames
//!   carry a [`ControlMsg`] (handshake, round orchestration, churn).
//! * **[`SocketTransport`]** — the server backend. Implements [`Transport`]
//!   for downloads (frames queued to per-client [`Session`]s and flushed by
//!   the event-driven reactor in [`super::reactor`]: a fixed budget of
//!   `poll(2)` shards owns every non-blocking socket, so connections scale
//!   without threads) and [`RemoteTransport`] for the client-originated
//!   half (uploads, reports) that the in-memory simulation fakes locally.
//!   [`crate::Federation`]'s round plumbing routes through both, so
//!   `Trainer::run` drives real client processes unchanged. Broadcasts
//!   encode once into a shared `Arc<[u8]>` frame; fan-out costs refcount
//!   bumps, not payload copies.
//! * **[`ClientConn`] / [`run_client_loop`]** — the client side: connect
//!   (with bounded backoff), register via `Hello`/`Welcome`, then an
//!   event-driven loop that installs broadcast parameters, trains on
//!   `TrainStart`, uploads, and answers δ probes, until `Shutdown`.
//!
//! Determinism contract: a loopback run of the canonical round loop
//! reproduces the [`PerfectTransport`] loss bit-exactly — the wire moves
//! raw little-endian `f32` bits through the same codec, every numeric
//! operation stays on exactly one side of the wire, and per-client frame
//! streams are consumed in the deterministic order the round loop fixes.
//!
//! [`PerfectTransport`]: super::transport::PerfectTransport

use super::message::{
    BroadcastDelivery, ControlMsg, Delivery, DropReason, FaultStats, LinkOutcome, MsgKind,
    WireError, PROTO_MAGIC, PROTO_VERSION,
};
use super::reactor::{self, NetConfig, ServerShared};
use super::session::{RecvError, Session, SessionState};
use super::stats::{CommStats, Direction};
use super::transport::{RemoteTransport, Transport};
use crate::client::{Client, LocalReport};
use crate::compress::{compress_plain, ef_compress_update, CompressedVec, Compression};
use crate::rules::LocalRule;
use rfl_tensor::{decode_f32_into, encode_f32_into};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Framing overhead per frame: 4-byte body length + 1-byte tag.
pub const FRAME_HEADER_BYTES: u64 = 5;

/// Upper bound on a frame body — rejects garbage lengths before allocating.
pub const MAX_FRAME_BYTES: usize = 256 << 20;

/// Ceiling on one reconnect-backoff delay (see
/// [`ClientConn::connect_with_backoff`]).
pub const BACKOFF_CAP: Duration = Duration::from_secs(1);

/// Writes one `[len][tag][body]` frame; returns its wire size.
pub fn write_frame<W: Write + ?Sized>(w: &mut W, tag: u8, body: &[u8]) -> io::Result<u64> {
    assert!(body.len() <= MAX_FRAME_BYTES, "frame body too large");
    let mut header = [0u8; 5];
    header[..4].copy_from_slice(&(body.len() as u32).to_le_bytes());
    header[4] = tag;
    w.write_all(&header)?;
    w.write_all(body)?;
    w.flush()?;
    Ok(FRAME_HEADER_BYTES + body.len() as u64)
}

/// Encodes one `[len][tag][body]` frame into a shared buffer — the
/// encode-once broadcast path queues a single `Arc<[u8]>` to every
/// recipient, so fan-out costs refcount bumps, not copies.
pub fn encode_frame(tag: u8, body: &[u8]) -> Arc<[u8]> {
    assert!(body.len() <= MAX_FRAME_BYTES, "frame body too large");
    let mut buf = Vec::with_capacity(FRAME_HEADER_BYTES as usize + body.len());
    buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
    buf.push(tag);
    buf.extend_from_slice(body);
    Arc::from(buf)
}

/// Reads one frame, tolerating arbitrarily split reads (`read_exact`
/// loops). Returns `(tag, body)`.
pub fn read_frame<R: Read + ?Sized>(r: &mut R) -> io::Result<(u8, Vec<u8>)> {
    let mut header = [0u8; 5];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame body of {len} bytes exceeds the {MAX_FRAME_BYTES} cap"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok((header[4], body))
}

/// A connectable/listenable address: `tcp://host:port` or `unix:/path`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// TCP, `host:port` (port 0 binds an ephemeral port).
    Tcp(String),
    /// Unix-domain socket path.
    #[cfg(unix)]
    Unix(std::path::PathBuf),
}

impl Endpoint {
    /// Parses `tcp://host:port`, `unix:/path`, or `unix:///path`.
    pub fn parse(s: &str) -> io::Result<Endpoint> {
        if let Some(addr) = s.strip_prefix("tcp://") {
            return Ok(Endpoint::Tcp(addr.to_string()));
        }
        #[cfg(unix)]
        if let Some(path) = s
            .strip_prefix("unix://")
            .or_else(|| s.strip_prefix("unix:"))
        {
            return Ok(Endpoint::Unix(std::path::PathBuf::from(path)));
        }
        Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("endpoint {s:?} is neither tcp://host:port nor unix:/path"),
        ))
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            #[cfg(unix)]
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// The stream capabilities the framing layer needs, factored over
/// `TcpStream`/`UnixStream`.
pub(crate) trait WireStream: Read + Write + Send + Sync {
    fn try_clone_stream(&self) -> io::Result<Box<dyn WireStream>>;
    /// Force-closes both halves (unblocks a blocked reader).
    fn shutdown_now(&self);
    /// The underlying descriptor, for the reactor's `poll`/`writev` calls.
    /// The stream object retains ownership; the fd is only valid while it
    /// lives.
    fn raw_fd(&self) -> RawFd;
}

impl WireStream for TcpStream {
    fn try_clone_stream(&self) -> io::Result<Box<dyn WireStream>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn shutdown_now(&self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }

    fn raw_fd(&self) -> RawFd {
        self.as_raw_fd()
    }
}

#[cfg(unix)]
impl WireStream for UnixStream {
    fn try_clone_stream(&self) -> io::Result<Box<dyn WireStream>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn shutdown_now(&self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }

    fn raw_fd(&self) -> RawFd {
        self.as_raw_fd()
    }
}

pub(crate) enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, std::path::PathBuf),
}

impl Listener {
    pub(crate) fn bind(endpoint: &Endpoint) -> io::Result<(Listener, Endpoint)> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                let actual = Endpoint::Tcp(l.local_addr()?.to_string());
                l.set_nonblocking(true)?;
                Ok((Listener::Tcp(l), actual))
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                // A stale socket file from a dead server would fail the
                // bind; replacing it is the conventional daemon behavior.
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Ok((Listener::Unix(l, path.clone()), endpoint.clone()))
            }
        }
    }

    /// Non-blocking accept. Accepted streams stay non-blocking — they are
    /// handed straight to a reactor shard's poll set.
    pub(crate) fn try_accept(&self) -> io::Result<Option<Box<dyn WireStream>>> {
        match self {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(true)?;
                    s.set_nodelay(true)?;
                    Ok(Some(Box::new(s)))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            #[cfg(unix)]
            Listener::Unix(l, _) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(true)?;
                    Ok(Some(Box::new(s)))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }

    /// The listening descriptor, for the accepting shard's poll set.
    pub(crate) fn raw_fd(&self) -> RawFd {
        match self {
            Listener::Tcp(l) => l.as_raw_fd(),
            #[cfg(unix)]
            Listener::Unix(l, _) => l.as_raw_fd(),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// The socket-backed server transport (TCP or Unix-domain).
///
/// Downloads implement [`Transport`] by writing real frames; the
/// client-originated half (uploads, reports) arrives through the
/// [`RemoteTransport`] receives that [`crate::Federation`]'s remote mode
/// calls in place of the simulation's local loopback. Delivery outcomes map
/// onto the same [`Delivery`]/[`LinkOutcome`] vocabulary as the in-memory
/// backends: a drained session is a [`DropReason::Loss`], a receive that
/// outwaits [`SocketTransport::set_recv_timeout`] is a
/// [`DropReason::Deadline`], and reconnects count as retries.
pub struct SocketTransport {
    shared: Arc<ServerShared>,
    net_threads: Vec<std::thread::JoinHandle<()>>,
    local: Endpoint,
    stats: CommStats,
    dropped: u64,
    deadline_drops: u64,
    timeout: Duration,
    /// Codec scratch (payload encode) and control scratch.
    wire: Vec<u8>,
    body: Vec<u8>,
}

impl SocketTransport {
    /// Binds `endpoint` and starts the reactor shards that accept
    /// registrations. `welcome` must be the [`ControlMsg::Welcome`] run
    /// configuration; its `num_clients` and `seed` validate incoming
    /// `Hello`s.
    pub fn bind(endpoint: &Endpoint, welcome: &ControlMsg) -> io::Result<SocketTransport> {
        let (n_clients, seed) = match *welcome {
            ControlMsg::Welcome {
                num_clients, seed, ..
            } => (num_clients as usize, seed),
            ref other => panic!(
                "SocketTransport::bind needs a Welcome, got {}",
                other.name()
            ),
        };
        let (listener, local) = Listener::bind(endpoint)?;
        let mut welcome_body = Vec::new();
        welcome.encode_body(&mut welcome_body);
        let cfg = NetConfig::from_env();
        let (shards, wake_rx_ends) = reactor::build_shards(cfg.threads)?;
        let shared = Arc::new(ServerShared {
            sessions: Mutex::new(vec![None; n_clients]),
            registration: Condvar::new(),
            reconnects: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            pending_up: AtomicU64::new(0),
            pending_down: AtomicU64::new(0),
            pending_msgs: AtomicU64::new(0),
            welcome_frame: encode_frame(welcome.tag(), &welcome_body),
            n_clients,
            seed,
            write_buf: cfg.write_buf,
            shards,
        });
        let net_threads = reactor::spawn_shards(listener, &shared, wake_rx_ends)?;
        Ok(SocketTransport {
            shared,
            net_threads,
            local,
            stats: CommStats::new(),
            dropped: 0,
            deadline_drops: 0,
            timeout: recv_timeout_from_env(),
            wire: Vec::new(),
            body: Vec::new(),
        })
    }

    /// The actually bound endpoint (resolves an ephemeral TCP port 0).
    pub fn local_endpoint(&self) -> &Endpoint {
        &self.local
    }

    /// Bounds every blocking receive; a client that stays silent longer is
    /// dropped from the round as a [`DropReason::Deadline`]. Defaults to
    /// 120 s (`RFL_SOCKET_TIMEOUT_SECS` overrides).
    pub fn set_recv_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// Blocks until all expected clients hold a live registered session, or
    /// `timeout` passes.
    pub fn wait_for_clients(&self, timeout: Duration) -> io::Result<()> {
        let deadline = Instant::now() + timeout;
        let mut sessions = self.shared.sessions.lock().expect("sessions poisoned");
        loop {
            let live = sessions.iter().flatten().filter(|s| s.is_live()).count();
            if live == self.shared.n_clients {
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("{live}/{} clients registered", self.shared.n_clients),
                ));
            }
            let (guard, _) = self
                .shared
                .registration
                .wait_timeout(sessions, deadline - now)
                .expect("sessions poisoned");
            sessions = guard;
        }
    }

    /// Number of currently live (non-draining) sessions.
    pub fn live_clients(&self) -> usize {
        let sessions = self.shared.sessions.lock().expect("sessions poisoned");
        sessions.iter().flatten().filter(|s| s.is_live()).count()
    }

    fn session(&self, client: usize) -> Option<Arc<Session>> {
        let sessions = self.shared.sessions.lock().expect("sessions poisoned");
        sessions.get(client).and_then(|s| s.clone())
    }

    /// Folds handshake traffic metered by the reactor shards into the
    /// ledger (the pair-wise accounting itself lives in
    /// [`CommStats::fold_handshakes`]).
    fn fold_pending(&mut self) {
        let up = self.shared.pending_up.swap(0, Ordering::Relaxed);
        let down = self.shared.pending_down.swap(0, Ordering::Relaxed);
        let msgs = self.shared.pending_msgs.swap(0, Ordering::Relaxed);
        self.stats.fold_handshakes(up, down, msgs);
    }

    /// The per-send enqueue deadline: backpressure on a wedged client's
    /// write queue is bounded by the same budget as a silent client's
    /// receive.
    fn send_deadline(&self) -> Instant {
        Instant::now() + self.timeout
    }

    /// Encodes `payload` with the wire codec into the scratch buffer and
    /// returns the round-tripped copy (the receiver-side bytes).
    fn codec_round_trip(&mut self, payload: &[f32]) -> Vec<f32> {
        encode_f32_into(&mut self.wire, payload);
        let mut out = Vec::with_capacity(payload.len());
        decode_f32_into(&self.wire, &mut out).expect("codec round-trip cannot fail");
        out
    }

    fn charge(&mut self, kind: MsgKind, bytes: u64) {
        if kind.is_delta() {
            self.stats.record_delta(kind.direction(), bytes);
        } else {
            self.stats.record(kind.direction(), bytes);
        }
    }

    fn charge_control(&mut self, dir: Direction, bytes: u64) {
        self.stats.record(dir, bytes);
    }

    fn send_control(&mut self, client: usize, msg: &ControlMsg) -> LinkOutcome {
        let Some(session) = self.session(client) else {
            self.dropped += 1;
            return LinkOutcome {
                delivered: false,
                attempts: 1,
                reason: Some(DropReason::Loss),
            };
        };
        msg.encode_body(&mut self.body);
        match session.send_frame(msg.tag(), &self.body, self.send_deadline()) {
            Ok(n) => {
                self.charge_control(msg.direction(), n);
                LinkOutcome::perfect()
            }
            Err(_) => {
                self.dropped += 1;
                LinkOutcome {
                    delivered: false,
                    attempts: 1,
                    reason: Some(DropReason::Loss),
                }
            }
        }
    }

    fn recv_frame(&mut self, client: usize, tag: u8) -> Result<Vec<u8>, DropReason> {
        let Some(session) = self.session(client) else {
            return Err(DropReason::Loss);
        };
        match session.recv_frame(tag, self.timeout) {
            // The caller charges the wire bytes (plane depends on the kind).
            Ok((body, _wire)) => Ok(body),
            Err(RecvError::Closed) => Err(DropReason::Loss),
            Err(RecvError::TimedOut) => {
                // A silent client is dropped from the round, exactly like
                // the in-memory deadline model; drain so later phases fail
                // fast instead of re-waiting the full timeout.
                session.close();
                Err(DropReason::Deadline)
            }
        }
    }
}

fn recv_timeout_from_env() -> Duration {
    std::env::var("RFL_SOCKET_TIMEOUT_SECS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map(Duration::from_secs)
        .unwrap_or(Duration::from_secs(120))
}

impl Transport for SocketTransport {
    fn begin_round(&mut self, _round: u64) {
        self.fold_pending();
    }

    fn send(&mut self, kind: MsgKind, client: usize, payload: &[f32]) -> Delivery {
        assert_eq!(
            kind.direction(),
            Direction::Download,
            "server-originated sends go down; uploads arrive via RemoteTransport::recv"
        );
        let data = self.codec_round_trip(payload);
        let deadline = self.send_deadline();
        let outcome = match self.session(client) {
            Some(session) => match session.send_frame(kind.tag(), &self.wire, deadline) {
                Ok(n) => {
                    self.charge(kind, n);
                    LinkOutcome::perfect()
                }
                Err(_) => {
                    self.dropped += 1;
                    LinkOutcome {
                        delivered: false,
                        attempts: 1,
                        reason: Some(DropReason::Loss),
                    }
                }
            },
            None => {
                self.dropped += 1;
                LinkOutcome {
                    delivered: false,
                    attempts: 1,
                    reason: Some(DropReason::Loss),
                }
            }
        };
        Delivery {
            data: outcome.delivered.then_some(data),
            attempts: outcome.attempts,
            reason: outcome.reason,
        }
    }

    fn broadcast(
        &mut self,
        kind: MsgKind,
        clients: &[usize],
        payload: &[f32],
    ) -> BroadcastDelivery {
        debug_assert_eq!(kind.direction(), Direction::Download, "broadcasts go down");
        let data = self.codec_round_trip(payload);
        // Encode once: every recipient queues the same `Arc<[u8]>` frame —
        // fan-out is N refcount bumps plus N queue pushes, never N copies
        // of an O(d) model.
        let frame = encode_frame(kind.tag(), &self.wire);
        let deadline = self.send_deadline();
        let mut links = Vec::with_capacity(clients.len());
        let mut delivered_bytes = 0u64;
        for &k in clients {
            let outcome = match self.session(k) {
                Some(session) => match session.send_encoded(&frame, deadline) {
                    Ok(n) => {
                        delivered_bytes += n;
                        LinkOutcome::perfect()
                    }
                    Err(_) => {
                        self.dropped += 1;
                        LinkOutcome {
                            delivered: false,
                            attempts: 1,
                            reason: Some(DropReason::Loss),
                        }
                    }
                },
                None => {
                    self.dropped += 1;
                    LinkOutcome {
                        delivered: false,
                        attempts: 1,
                        reason: Some(DropReason::Loss),
                    }
                }
            };
            links.push(outcome);
        }
        if delivered_bytes > 0 {
            self.charge(kind, delivered_bytes);
        }
        BroadcastDelivery { data, links }
    }

    fn send_raw(&mut self, kind: MsgKind, _client: usize, wire_bytes: u64) -> LinkOutcome {
        // Ledger-only charge for callers that pre-encode their own payload;
        // compressed frames that actually cross the socket go through
        // `send_compressed` / `recv_compressed` below. Only the compressed
        // planes pre-encode, so any other kind here is a mischarge.
        debug_assert!(
            kind.is_compressed(),
            "send_raw is for pre-encoded compressed payloads, got {kind:?}"
        );
        self.charge(kind, wire_bytes);
        LinkOutcome::perfect()
    }

    fn send_compressed(
        &mut self,
        kind: MsgKind,
        client: usize,
        payload: &CompressedVec,
        out: &mut CompressedVec,
    ) -> LinkOutcome {
        payload.encode_into(&mut self.body);
        let deadline = self.send_deadline();
        let outcome = match self.session(client) {
            Some(session) => match session.send_frame(kind.tag(), &self.body, deadline) {
                Ok(n) => {
                    self.charge(kind, n);
                    LinkOutcome::perfect()
                }
                Err(_) => {
                    self.dropped += 1;
                    LinkOutcome {
                        delivered: false,
                        attempts: 1,
                        reason: Some(DropReason::Loss),
                    }
                }
            },
            None => {
                self.dropped += 1;
                LinkOutcome {
                    delivered: false,
                    attempts: 1,
                    reason: Some(DropReason::Loss),
                }
            }
        };
        if outcome.delivered {
            assert!(
                out.decode_from(&self.body),
                "codec round-trip cannot fail on a well-formed payload"
            );
        }
        outcome
    }

    fn stats(&self) -> &CommStats {
        &self.stats
    }

    fn fault_stats(&self) -> FaultStats {
        FaultStats {
            dropped: self.dropped,
            retries: self.shared.reconnects.load(Ordering::Relaxed),
            deadline_drops: self.deadline_drops,
        }
    }

    fn as_remote(&mut self) -> Option<&mut dyn RemoteTransport> {
        Some(self)
    }
}

impl RemoteTransport for SocketTransport {
    /// Claims one client-originated upload frame, blocking until it
    /// completes. `Federation::fold_uploads` calls this per selected client
    /// *in selection order* and folds each payload as its frame completes,
    /// dropping the buffer before claiming the next — the server never
    /// holds more than one decoded upload. The aggregation path instead
    /// sweeps [`RemoteTransport::try_recv`] to claim frames in *arrival*
    /// order (the reduction tree makes the fold order-free), falling back
    /// to this blocking claim only when nothing is ready.
    fn recv(&mut self, kind: MsgKind, client: usize) -> Delivery {
        assert_eq!(
            kind.direction(),
            Direction::Upload,
            "remote receives are client-originated uploads"
        );
        match self.recv_frame(client, kind.tag()) {
            Ok(body) => {
                let mut data = Vec::new();
                match decode_f32_into(&body, &mut data) {
                    Ok(()) => {
                        self.charge(kind, FRAME_HEADER_BYTES + body.len() as u64);
                        Delivery {
                            data: Some(data),
                            attempts: 1,
                            reason: None,
                        }
                    }
                    Err(_) => {
                        self.dropped += 1;
                        Delivery {
                            data: None,
                            attempts: 1,
                            reason: Some(DropReason::Loss),
                        }
                    }
                }
            }
            Err(reason) => {
                self.dropped += 1;
                if reason == DropReason::Deadline {
                    self.deadline_drops += 1;
                }
                Delivery {
                    data: None,
                    attempts: 1,
                    reason: Some(reason),
                }
            }
        }
    }

    /// Non-blocking readiness probe: resolves `client`'s upload right now
    /// if its frame already completed in the reactor (identical decode and
    /// byte accounting to [`RemoteTransport::recv`]) or if the session is
    /// gone (a deterministic loss, like the blocking path); returns `None`
    /// while the link is live with nothing queued. Never times a client
    /// out — deadline enforcement stays with the blocking claim.
    fn try_recv(&mut self, kind: MsgKind, client: usize) -> Option<Delivery> {
        assert_eq!(
            kind.direction(),
            Direction::Upload,
            "remote receives are client-originated uploads"
        );
        let Some(session) = self.session(client) else {
            self.dropped += 1;
            return Some(Delivery {
                data: None,
                attempts: 1,
                reason: Some(DropReason::Loss),
            });
        };
        match session.try_recv_frame(kind.tag()) {
            Ok(Some((body, wire))) => {
                let mut data = Vec::new();
                match decode_f32_into(&body, &mut data) {
                    Ok(()) => {
                        self.charge(kind, wire);
                        Some(Delivery {
                            data: Some(data),
                            attempts: 1,
                            reason: None,
                        })
                    }
                    Err(_) => {
                        self.dropped += 1;
                        Some(Delivery {
                            data: None,
                            attempts: 1,
                            reason: Some(DropReason::Loss),
                        })
                    }
                }
            }
            Ok(None) => None,
            Err(_) => {
                self.dropped += 1;
                Some(Delivery {
                    data: None,
                    attempts: 1,
                    reason: Some(DropReason::Loss),
                })
            }
        }
    }

    fn start_training(&mut self, client: usize, round: u64, steps: usize) -> LinkOutcome {
        let out = self.send_control(
            client,
            &ControlMsg::TrainStart {
                round,
                steps: steps as u32,
            },
        );
        if out.delivered {
            if let Some(s) = self.session(client) {
                s.set_state(SessionState::InRound);
            }
        }
        out
    }

    fn recv_report(&mut self, client: usize) -> Option<LocalReport> {
        let tag = ControlMsg::Report {
            loss: 0.0,
            reg_loss: 0.0,
            steps: 0,
            examples: 0,
        }
        .tag();
        match self.recv_frame(client, tag) {
            Ok(body) => {
                self.charge_control(Direction::Upload, FRAME_HEADER_BYTES + body.len() as u64);
                if let Some(s) = self.session(client) {
                    s.set_state(SessionState::Registered);
                }
                match ControlMsg::decode_body(tag, &body) {
                    Ok(ControlMsg::Report {
                        loss,
                        reg_loss,
                        steps,
                        examples,
                    }) => Some(LocalReport {
                        loss,
                        reg_loss,
                        steps: steps as usize,
                        examples: examples as usize,
                    }),
                    _ => None,
                }
            }
            Err(reason) => {
                self.dropped += 1;
                if reason == DropReason::Deadline {
                    self.deadline_drops += 1;
                }
                None
            }
        }
    }

    fn request_delta(&mut self, client: usize, round: u64, probe_batch: usize) -> LinkOutcome {
        self.send_control(
            client,
            &ControlMsg::DeltaProbe {
                round,
                probe_batch: probe_batch as u32,
            },
        )
    }

    fn recv_compressed(
        &mut self,
        kind: MsgKind,
        client: usize,
        out: &mut CompressedVec,
    ) -> LinkOutcome {
        assert!(
            kind.is_compressed() && kind.direction() == Direction::Upload,
            "remote compressed receives are client-originated uploads"
        );
        match self.recv_frame(client, kind.tag()) {
            Ok(body) => {
                if out.decode_from(&body) {
                    // The compressed frame body IS the `CompressedVec` wire
                    // encoding: charge its true length (plus frame header),
                    // never a modelled estimate.
                    debug_assert_eq!(body.len(), out.wire_bytes());
                    self.charge(kind, FRAME_HEADER_BYTES + body.len() as u64);
                    LinkOutcome::perfect()
                } else {
                    self.dropped += 1;
                    LinkOutcome {
                        delivered: false,
                        attempts: 1,
                        reason: Some(DropReason::Loss),
                    }
                }
            }
            Err(reason) => {
                self.dropped += 1;
                if reason == DropReason::Deadline {
                    self.deadline_drops += 1;
                }
                LinkOutcome {
                    delivered: false,
                    attempts: 1,
                    reason: Some(reason),
                }
            }
        }
    }

    fn shutdown(&mut self) {
        let sessions: Vec<Arc<Session>> = {
            let guard = self.shared.sessions.lock().expect("sessions poisoned");
            guard.iter().flatten().cloned().collect()
        };
        self.body.clear();
        let deadline = self.send_deadline();
        for session in sessions {
            if session.is_live() {
                let msg = ControlMsg::Shutdown;
                msg.encode_body(&mut self.body);
                if let Ok(n) = session.send_frame(msg.tag(), &self.body, deadline) {
                    self.charge_control(Direction::Download, n);
                }
                // Let the reactor flush the queued Shutdown before the
                // socket closes; a hard close here could drop it.
                session.close_graceful();
            } else {
                session.close();
            }
        }
        // Stop *after* queueing the shutdown frames so no shard starts its
        // wind-down with an empty-looking queue it then ignores.
        self.shared.stop.store(true, Ordering::Relaxed);
        self.shared.wake_all();
        for handle in self.net_threads.drain(..) {
            let _ = handle.join();
        }
        self.fold_pending();
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A client's framed connection to an [`SocketTransport`] server.
pub struct ClientConn {
    stream: Box<dyn WireStream>,
    body: Vec<u8>,
    wire: Vec<u8>,
}

/// One frame from the server, decoded.
#[derive(Debug)]
pub enum ClientEvent {
    /// A payload frame: an `f32` vector on a [`MsgKind`] plane.
    Payload(MsgKind, Vec<f32>),
    /// A compressed payload frame in the exact `CompressedVec` encoding.
    Compressed(MsgKind, CompressedVec),
    /// A control frame.
    Control(ControlMsg),
}

impl ClientConn {
    /// Connects once.
    pub fn connect(endpoint: &Endpoint) -> io::Result<ClientConn> {
        let stream: Box<dyn WireStream> = match endpoint {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr.as_str())?;
                s.set_nodelay(true)?;
                Box::new(s)
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => Box::new(UnixStream::connect(path)?),
        };
        Ok(ClientConn {
            stream,
            body: Vec::new(),
            wire: Vec::new(),
        })
    }

    /// Connects with bounded exponential backoff: after a failed attempt
    /// `i` (0-based) the delay doubles from `base_delay`, capped at
    /// [`BACKOFF_CAP`]. The wait runs on a condvar with an absolute
    /// deadline rather than `thread::sleep`, so churn/reconnect paths never
    /// depend on sleep granularity and a wrapping runtime could cancel the
    /// wait by notifying. Gives a client started before its server a
    /// registration window, and bounds how long a partitioned client spins.
    pub fn connect_with_backoff(
        endpoint: &Endpoint,
        attempts: u32,
        base_delay: Duration,
    ) -> io::Result<ClientConn> {
        assert!(attempts >= 1, "need at least one attempt");
        let parked = (Mutex::new(()), Condvar::new());
        let mut last = None;
        for i in 0..attempts {
            if i > 0 {
                let delay = base_delay
                    .saturating_mul(1u32 << (i - 1).min(16))
                    .min(BACKOFF_CAP);
                let deadline = Instant::now() + delay;
                let mut guard = parked.0.lock().expect("backoff mutex poisoned");
                // Deadline loop: spurious wakeups re-check the clock.
                loop {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (g, _) = parked
                        .1
                        .wait_timeout(guard, deadline - now)
                        .expect("backoff mutex poisoned");
                    guard = g;
                }
            }
            match ClientConn::connect(endpoint) {
                Ok(conn) => return Ok(conn),
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("at least one attempt failed"))
    }

    /// Registers with the server; returns the `Welcome` run configuration.
    pub fn hello(&mut self, client_id: u32, seed: u64) -> io::Result<ControlMsg> {
        self.send_control(&ControlMsg::Hello {
            magic: PROTO_MAGIC,
            version: PROTO_VERSION,
            client_id,
            seed,
        })?;
        match self.read_event()? {
            ClientEvent::Control(welcome @ ControlMsg::Welcome { .. }) => Ok(welcome),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected welcome, got {other:?}"),
            )),
        }
    }

    /// Sends a control frame.
    pub fn send_control(&mut self, msg: &ControlMsg) -> io::Result<()> {
        msg.encode_body(&mut self.body);
        write_frame(&mut self.stream, msg.tag(), &self.body)?;
        Ok(())
    }

    /// Sends an `f32` payload on `kind`'s plane (codec-encoded).
    pub fn send_payload(&mut self, kind: MsgKind, data: &[f32]) -> io::Result<()> {
        encode_f32_into(&mut self.wire, data);
        write_frame(&mut self.stream, kind.tag(), &self.wire)?;
        Ok(())
    }

    /// Sends a compressed payload in its exact `CompressedVec` wire
    /// encoding; the frame body length is `payload.wire_bytes()`.
    pub fn send_compressed(&mut self, kind: MsgKind, payload: &CompressedVec) -> io::Result<()> {
        debug_assert!(kind.is_compressed(), "kind must be a compressed plane");
        payload.encode_into(&mut self.wire);
        write_frame(&mut self.stream, kind.tag(), &self.wire)?;
        Ok(())
    }

    /// Blocks for the next frame.
    pub fn read_event(&mut self) -> io::Result<ClientEvent> {
        let (tag, body) = read_frame(&mut self.stream)?;
        if let Some(kind) = MsgKind::from_tag(tag) {
            if kind.is_compressed() {
                let payload = CompressedVec::decode(&body).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad compressed frame")
                })?;
                return Ok(ClientEvent::Compressed(kind, payload));
            }
            let mut data = Vec::new();
            decode_f32_into(&body, &mut data)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad payload codec"))?;
            return Ok(ClientEvent::Payload(kind, data));
        }
        let msg = ControlMsg::decode_body(tag, &body)
            .map_err(|e: WireError| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Ok(ClientEvent::Control(msg))
    }
}

/// Client-loop tuning knobs.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientLoopOpts {
    /// Graceful churn: after completing round `r`'s training and upload,
    /// answer its δ probe with a `Goodbye` and leave the federation.
    pub leave_after_round: Option<u64>,
    /// Upload-compression policy (normally taken from the `Welcome` frame).
    /// When enabled, model uploads go up as error-feedback-compressed
    /// `CompressedUp` frames and δ syncs as `CompressedDeltaUp` frames.
    pub compression: Compression,
}

/// How a client loop ended.
#[derive(Debug)]
pub enum ClientOutcome {
    /// The server ended the run; exit cleanly.
    Shutdown,
    /// This client left gracefully (`leave_after_round`).
    Left,
    /// The link died; the caller may reconnect and resume.
    Disconnected(io::Error),
}

/// The event-driven client half of the protocol: installs broadcast
/// parameters, trains on `TrainStart` (with the δ target received this
/// round, if any), uploads report + parameters, and answers δ probes —
/// until `Shutdown`, a graceful departure, or a dead link.
///
/// The numeric call sequence on `client` is exactly the one the in-process
/// simulation makes on its local replica, so the client's RNG stream and
/// parameter trajectory are bit-identical to the oracle's.
pub fn run_client_loop(
    conn: &mut ClientConn,
    client: &mut Client,
    lambda: f32,
    opts: &ClientLoopOpts,
) -> ClientOutcome {
    let mut pending_target: Option<Vec<f32>> = None;
    let mut flat = Vec::new();
    // Compressed-upload state: the last broadcast parameters (the update is
    // relative to them) and reused compression workspaces. The residual
    // itself lives on the `Client` so hibernation persists it.
    let mut last_global: Vec<f32> = Vec::new();
    let mut update: Vec<f32> = Vec::new();
    let mut recon: Vec<f32> = Vec::new();
    let mut payload = CompressedVec::default();
    loop {
        let event = match conn.read_event() {
            Ok(ev) => ev,
            Err(e) => return ClientOutcome::Disconnected(e),
        };
        let io_result = match event {
            ClientEvent::Payload(MsgKind::ModelDown, params) => {
                client.write_params(&params);
                last_global = params;
                Ok(())
            }
            ClientEvent::Payload(MsgKind::DeltaDown, target) => {
                pending_target = Some(target);
                Ok(())
            }
            ClientEvent::Control(ControlMsg::TrainStart { steps, .. }) => {
                let rule = match pending_target.take() {
                    Some(target) => LocalRule::Mmd {
                        lambda,
                        target: Arc::new(target),
                    },
                    None => LocalRule::Plain,
                };
                let report = client.train_local(steps as usize, &rule);
                conn.send_control(&ControlMsg::Report {
                    loss: report.loss,
                    reg_loss: report.reg_loss,
                    steps: report.steps as u32,
                    examples: report.examples as u32,
                })
                .and_then(|()| {
                    client.read_params(&mut flat);
                    if opts.compression.is_enabled() {
                        // Same arithmetic, same order, same residual fold as
                        // the in-process `fold_uploads` oracle — the frame
                        // that crosses the socket is bit-identical.
                        ef_compress_update(
                            opts.compression,
                            &flat,
                            &last_global,
                            client.residual_mut(),
                            &mut update,
                            &mut recon,
                            &mut payload,
                        );
                        conn.send_compressed(MsgKind::CompressedUp, &payload)
                    } else {
                        conn.send_payload(MsgKind::ModelUp, &flat)
                    }
                })
            }
            ClientEvent::Control(ControlMsg::DeltaProbe { round, probe_batch }) => {
                if opts.leave_after_round == Some(round) {
                    let _ = conn.send_control(&ControlMsg::Goodbye);
                    return ClientOutcome::Left;
                }
                let delta = client.compute_delta(probe_batch as usize);
                if opts.compression.is_enabled() {
                    compress_plain(opts.compression, &delta, &mut payload);
                    conn.send_compressed(MsgKind::CompressedDeltaUp, &payload)
                } else {
                    conn.send_payload(MsgKind::DeltaUp, &delta)
                }
            }
            ClientEvent::Control(ControlMsg::Shutdown) => return ClientOutcome::Shutdown,
            // Unknown-but-valid frames (e.g. a future DeltaTableDown) are
            // ignored rather than fatal; the server's deadline handles a
            // client that ignores something it needed to answer.
            _ => Ok(()),
        };
        if let Err(e) = io_result {
            return ClientOutcome::Disconnected(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        let n = write_frame(&mut buf, 0x42, b"hello").unwrap();
        assert_eq!(n, 5 + 5);
        assert_eq!(buf.len() as u64, n);
        let (tag, body) = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(tag, 0x42);
        assert_eq!(body, b"hello");
    }

    #[test]
    fn empty_body_frames_work() {
        let mut buf = Vec::new();
        write_frame(&mut buf, ControlMsg::Goodbye.tag(), &[]).unwrap();
        let (tag, body) = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(tag, ControlMsg::Goodbye.tag());
        assert!(body.is_empty());
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.push(0x01);
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 0x01, &[1, 2, 3, 4]).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(read_frame(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn endpoint_parsing() {
        assert_eq!(
            Endpoint::parse("tcp://127.0.0.1:7070").unwrap(),
            Endpoint::Tcp("127.0.0.1:7070".to_string())
        );
        #[cfg(unix)]
        {
            assert_eq!(
                Endpoint::parse("unix:/tmp/x.sock").unwrap(),
                Endpoint::Unix("/tmp/x.sock".into())
            );
            assert_eq!(
                Endpoint::parse("unix:///tmp/x.sock").unwrap(),
                Endpoint::Unix("/tmp/x.sock".into())
            );
        }
        assert!(Endpoint::parse("http://nope").is_err());
        // Display round-trips through parse.
        let e = Endpoint::parse("tcp://0.0.0.0:0").unwrap();
        assert_eq!(Endpoint::parse(&e.to_string()).unwrap(), e);
    }
}
