//! Real multi-process federation over sockets.
//!
//! This module promotes the [`Transport`] abstraction from in-memory
//! delivery to an actual wire: a length-prefixed framing layer over TCP or
//! Unix-domain sockets, speaking the *same* hand-rolled `bytes` codec as
//! the in-memory channel ([`rfl_tensor::encode_f32_into`]), so a payload's
//! bytes on the wire are exactly the bytes the simulation meters.
//!
//! Three pieces:
//!
//! * **Framing** — `[u32 le body_len][u8 tag][body]`. Payload frames carry
//!   a [`MsgKind`] tag and a codec-encoded `f32` vector; control frames
//!   carry a [`ControlMsg`] (handshake, round orchestration, churn).
//! * **[`SocketTransport`]** — the server backend. Implements [`Transport`]
//!   for downloads (frames written to per-client [`Session`]s) and
//!   [`RemoteTransport`] for the client-originated half (uploads, reports)
//!   that the in-memory simulation fakes locally. [`crate::Federation`]'s
//!   round plumbing routes through both, so `Trainer::run` drives real
//!   client processes unchanged.
//! * **[`ClientConn`] / [`run_client_loop`]** — the client side: connect
//!   (with bounded backoff), register via `Hello`/`Welcome`, then an
//!   event-driven loop that installs broadcast parameters, trains on
//!   `TrainStart`, uploads, and answers δ probes, until `Shutdown`.
//!
//! Determinism contract: a loopback run of the canonical round loop
//! reproduces the [`PerfectTransport`] loss bit-exactly — the wire moves
//! raw little-endian `f32` bits through the same codec, every numeric
//! operation stays on exactly one side of the wire, and per-client frame
//! streams are consumed in the deterministic order the round loop fixes.
//!
//! [`PerfectTransport`]: super::transport::PerfectTransport

use super::message::{
    BroadcastDelivery, ControlMsg, Delivery, DropReason, FaultStats, LinkOutcome, MsgKind,
    WireError, PROTO_MAGIC, PROTO_VERSION,
};
use super::session::{RecvError, Session, SessionState};
use super::stats::{CommStats, Direction};
use super::transport::{RemoteTransport, Transport};
use crate::client::{Client, LocalReport};
use crate::compress::{compress_plain, ef_compress_update, CompressedVec, Compression};
use crate::rules::LocalRule;
use rfl_tensor::{decode_f32_into, encode_f32_into};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Framing overhead per frame: 4-byte body length + 1-byte tag.
pub const FRAME_HEADER_BYTES: u64 = 5;

/// Upper bound on a frame body — rejects garbage lengths before allocating.
pub const MAX_FRAME_BYTES: usize = 256 << 20;

/// Writes one `[len][tag][body]` frame; returns its wire size.
pub fn write_frame<W: Write + ?Sized>(w: &mut W, tag: u8, body: &[u8]) -> io::Result<u64> {
    assert!(body.len() <= MAX_FRAME_BYTES, "frame body too large");
    let mut header = [0u8; 5];
    header[..4].copy_from_slice(&(body.len() as u32).to_le_bytes());
    header[4] = tag;
    w.write_all(&header)?;
    w.write_all(body)?;
    w.flush()?;
    Ok(FRAME_HEADER_BYTES + body.len() as u64)
}

/// Reads one frame, tolerating arbitrarily split reads (`read_exact`
/// loops). Returns `(tag, body)`.
pub fn read_frame<R: Read + ?Sized>(r: &mut R) -> io::Result<(u8, Vec<u8>)> {
    let mut header = [0u8; 5];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame body of {len} bytes exceeds the {MAX_FRAME_BYTES} cap"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok((header[4], body))
}

/// A connectable/listenable address: `tcp://host:port` or `unix:/path`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// TCP, `host:port` (port 0 binds an ephemeral port).
    Tcp(String),
    /// Unix-domain socket path.
    #[cfg(unix)]
    Unix(std::path::PathBuf),
}

impl Endpoint {
    /// Parses `tcp://host:port`, `unix:/path`, or `unix:///path`.
    pub fn parse(s: &str) -> io::Result<Endpoint> {
        if let Some(addr) = s.strip_prefix("tcp://") {
            return Ok(Endpoint::Tcp(addr.to_string()));
        }
        #[cfg(unix)]
        if let Some(path) = s
            .strip_prefix("unix://")
            .or_else(|| s.strip_prefix("unix:"))
        {
            return Ok(Endpoint::Unix(std::path::PathBuf::from(path)));
        }
        Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("endpoint {s:?} is neither tcp://host:port nor unix:/path"),
        ))
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            #[cfg(unix)]
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// The stream capabilities the framing layer needs, factored over
/// `TcpStream`/`UnixStream`.
pub(crate) trait WireStream: Read + Write + Send + Sync {
    fn try_clone_stream(&self) -> io::Result<Box<dyn WireStream>>;
    fn set_stream_read_timeout(&self, t: Option<Duration>) -> io::Result<()>;
    /// Force-closes both halves (unblocks a blocked reader).
    fn shutdown_now(&self);
}

impl WireStream for TcpStream {
    fn try_clone_stream(&self) -> io::Result<Box<dyn WireStream>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn set_stream_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(t)
    }

    fn shutdown_now(&self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }
}

#[cfg(unix)]
impl WireStream for UnixStream {
    fn try_clone_stream(&self) -> io::Result<Box<dyn WireStream>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn set_stream_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(t)
    }

    fn shutdown_now(&self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, std::path::PathBuf),
}

impl Listener {
    fn bind(endpoint: &Endpoint) -> io::Result<(Listener, Endpoint)> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                let actual = Endpoint::Tcp(l.local_addr()?.to_string());
                l.set_nonblocking(true)?;
                Ok((Listener::Tcp(l), actual))
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                // A stale socket file from a dead server would fail the
                // bind; replacing it is the conventional daemon behavior.
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Ok((Listener::Unix(l, path.clone()), endpoint.clone()))
            }
        }
    }

    /// Non-blocking accept (the accept loop polls the stop flag between
    /// attempts).
    fn try_accept(&self) -> io::Result<Option<Box<dyn WireStream>>> {
        match self {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    s.set_nodelay(true)?;
                    Ok(Some(Box::new(s)))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            #[cfg(unix)]
            Listener::Unix(l, _) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    Ok(Some(Box::new(s)))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

struct ServerShared {
    /// `sessions[k]` is client `k`'s live session, if any.
    sessions: Mutex<Vec<Option<Arc<Session>>>>,
    registration: Condvar,
    /// Reconnects observed by the accept loop — reported as
    /// [`FaultStats::retries`], the same History/CSV column the in-memory
    /// fault model uses for retransmissions.
    reconnects: AtomicU64,
    stop: AtomicBool,
    /// Handshake wire bytes, folded into [`CommStats`] at the next round
    /// boundary (the accept thread cannot touch the ledger directly).
    pending_up: AtomicU64,
    pending_down: AtomicU64,
    pending_msgs: AtomicU64,
    welcome_tag: u8,
    welcome_body: Vec<u8>,
    n_clients: usize,
    seed: u64,
}

/// The socket-backed server transport (TCP or Unix-domain).
///
/// Downloads implement [`Transport`] by writing real frames; the
/// client-originated half (uploads, reports) arrives through the
/// [`RemoteTransport`] receives that [`crate::Federation`]'s remote mode
/// calls in place of the simulation's local loopback. Delivery outcomes map
/// onto the same [`Delivery`]/[`LinkOutcome`] vocabulary as the in-memory
/// backends: a drained session is a [`DropReason::Loss`], a receive that
/// outwaits [`SocketTransport::set_recv_timeout`] is a
/// [`DropReason::Deadline`], and reconnects count as retries.
pub struct SocketTransport {
    shared: Arc<ServerShared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    local: Endpoint,
    stats: CommStats,
    dropped: u64,
    deadline_drops: u64,
    timeout: Duration,
    /// Codec scratch (payload encode) and control scratch.
    wire: Vec<u8>,
    body: Vec<u8>,
}

impl SocketTransport {
    /// Binds `endpoint` and starts accepting registrations. `welcome` must
    /// be the [`ControlMsg::Welcome`] run configuration; its `num_clients`
    /// and `seed` validate incoming `Hello`s.
    pub fn bind(endpoint: &Endpoint, welcome: &ControlMsg) -> io::Result<SocketTransport> {
        let (n_clients, seed) = match *welcome {
            ControlMsg::Welcome {
                num_clients, seed, ..
            } => (num_clients as usize, seed),
            ref other => panic!(
                "SocketTransport::bind needs a Welcome, got {}",
                other.name()
            ),
        };
        let (listener, local) = Listener::bind(endpoint)?;
        let mut welcome_body = Vec::new();
        welcome.encode_body(&mut welcome_body);
        let shared = Arc::new(ServerShared {
            sessions: Mutex::new(vec![None; n_clients]),
            registration: Condvar::new(),
            reconnects: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            pending_up: AtomicU64::new(0),
            pending_down: AtomicU64::new(0),
            pending_msgs: AtomicU64::new(0),
            welcome_tag: welcome.tag(),
            welcome_body,
            n_clients,
            seed,
        });
        let accept_shared = shared.clone();
        let accept_thread = std::thread::Builder::new()
            .name("rfl-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(SocketTransport {
            shared,
            accept_thread: Some(accept_thread),
            local,
            stats: CommStats::new(),
            dropped: 0,
            deadline_drops: 0,
            timeout: recv_timeout_from_env(),
            wire: Vec::new(),
            body: Vec::new(),
        })
    }

    /// The actually bound endpoint (resolves an ephemeral TCP port 0).
    pub fn local_endpoint(&self) -> &Endpoint {
        &self.local
    }

    /// Bounds every blocking receive; a client that stays silent longer is
    /// dropped from the round as a [`DropReason::Deadline`]. Defaults to
    /// 120 s (`RFL_SOCKET_TIMEOUT_SECS` overrides).
    pub fn set_recv_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// Blocks until all expected clients hold a live registered session, or
    /// `timeout` passes.
    pub fn wait_for_clients(&self, timeout: Duration) -> io::Result<()> {
        let deadline = Instant::now() + timeout;
        let mut sessions = self.shared.sessions.lock().expect("sessions poisoned");
        loop {
            let live = sessions.iter().flatten().filter(|s| s.is_live()).count();
            if live == self.shared.n_clients {
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("{live}/{} clients registered", self.shared.n_clients),
                ));
            }
            let (guard, _) = self
                .shared
                .registration
                .wait_timeout(sessions, deadline - now)
                .expect("sessions poisoned");
            sessions = guard;
        }
    }

    /// Number of currently live (non-draining) sessions.
    pub fn live_clients(&self) -> usize {
        let sessions = self.shared.sessions.lock().expect("sessions poisoned");
        sessions.iter().flatten().filter(|s| s.is_live()).count()
    }

    fn session(&self, client: usize) -> Option<Arc<Session>> {
        let sessions = self.shared.sessions.lock().expect("sessions poisoned");
        sessions.get(client).and_then(|s| s.clone())
    }

    /// Folds handshake traffic metered by the accept thread into the
    /// ledger. Handshakes come in hello/welcome pairs, so half the pending
    /// messages went up and half came down; the first record on each side
    /// carries the accumulated bytes, the rest only bump the message count.
    fn fold_pending(&mut self) {
        let up = self.shared.pending_up.swap(0, Ordering::Relaxed);
        let down = self.shared.pending_down.swap(0, Ordering::Relaxed);
        let msgs = self.shared.pending_msgs.swap(0, Ordering::Relaxed);
        for i in 0..msgs / 2 {
            self.stats
                .record(Direction::Upload, if i == 0 { up } else { 0 });
            self.stats
                .record(Direction::Download, if i == 0 { down } else { 0 });
        }
    }

    /// Encodes `payload` with the wire codec into the scratch buffer and
    /// returns the round-tripped copy (the receiver-side bytes).
    fn codec_round_trip(&mut self, payload: &[f32]) -> Vec<f32> {
        encode_f32_into(&mut self.wire, payload);
        let mut out = Vec::with_capacity(payload.len());
        decode_f32_into(&self.wire, &mut out).expect("codec round-trip cannot fail");
        out
    }

    fn charge(&mut self, kind: MsgKind, bytes: u64) {
        if kind.is_delta() {
            self.stats.record_delta(kind.direction(), bytes);
        } else {
            self.stats.record(kind.direction(), bytes);
        }
    }

    fn charge_control(&mut self, dir: Direction, bytes: u64) {
        self.stats.record(dir, bytes);
    }

    fn send_control(&mut self, client: usize, msg: &ControlMsg) -> LinkOutcome {
        let Some(session) = self.session(client) else {
            self.dropped += 1;
            return LinkOutcome {
                delivered: false,
                attempts: 1,
                reason: Some(DropReason::Loss),
            };
        };
        msg.encode_body(&mut self.body);
        match session.send_frame(msg.tag(), &self.body) {
            Ok(n) => {
                self.charge_control(msg.direction(), n);
                LinkOutcome::perfect()
            }
            Err(_) => {
                self.dropped += 1;
                LinkOutcome {
                    delivered: false,
                    attempts: 1,
                    reason: Some(DropReason::Loss),
                }
            }
        }
    }

    fn recv_frame(&mut self, client: usize, tag: u8) -> Result<Vec<u8>, DropReason> {
        let Some(session) = self.session(client) else {
            return Err(DropReason::Loss);
        };
        match session.recv_frame(tag, self.timeout) {
            // The caller charges the wire bytes (plane depends on the kind).
            Ok((body, _wire)) => Ok(body),
            Err(RecvError::Closed) => Err(DropReason::Loss),
            Err(RecvError::TimedOut) => {
                // A silent client is dropped from the round, exactly like
                // the in-memory deadline model; drain so later phases fail
                // fast instead of re-waiting the full timeout.
                session.close();
                Err(DropReason::Deadline)
            }
        }
    }
}

fn recv_timeout_from_env() -> Duration {
    std::env::var("RFL_SOCKET_TIMEOUT_SECS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map(Duration::from_secs)
        .unwrap_or(Duration::from_secs(120))
}

fn accept_loop(listener: Listener, shared: Arc<ServerShared>) {
    while !shared.stop.load(Ordering::Relaxed) {
        match listener.try_accept() {
            Ok(Some(stream)) => {
                // Handshake inline: one frame in, one frame out, bounded.
                let _ = handshake(stream, &shared);
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(2)),
            Err(_) => break,
        }
    }
}

/// Validates a `Hello`, replies `Welcome`, and registers the session.
fn handshake(mut stream: Box<dyn WireStream>, shared: &Arc<ServerShared>) -> io::Result<()> {
    stream.set_stream_read_timeout(Some(Duration::from_secs(10)))?;
    let (tag, body) = read_frame(&mut stream)?;
    let hello = ControlMsg::decode_body(tag, &body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let ControlMsg::Hello {
        magic,
        version,
        client_id,
        seed,
    } = hello
    else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "first frame was not a hello",
        ));
    };
    let id = client_id as usize;
    if magic != PROTO_MAGIC || version != PROTO_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "protocol magic/version mismatch",
        ));
    }
    if id >= shared.n_clients || seed != shared.seed {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "client id out of range or seed mismatch",
        ));
    }
    let hello_bytes = FRAME_HEADER_BYTES + body.len() as u64;
    stream.set_stream_read_timeout(None)?;
    // Register the session *before* sending the welcome: a client that
    // holds its Welcome must already be visible to wait_for_clients.
    let session = Session::spawn(id, stream)?;
    let mut sessions = shared.sessions.lock().expect("sessions poisoned");
    if let Some(old) = sessions[id].replace(session.clone()) {
        // A returning client: the old link is superseded. Count it as a
        // retry (the reconnect IS the retransmission budget of this
        // backend) and force the stale reader out.
        shared.reconnects.fetch_add(1, Ordering::Relaxed);
        old.close();
    }
    drop(sessions);
    let welcome_bytes = session.send_frame(shared.welcome_tag, &shared.welcome_body)?;
    shared.pending_up.fetch_add(hello_bytes, Ordering::Relaxed);
    shared
        .pending_down
        .fetch_add(welcome_bytes, Ordering::Relaxed);
    shared.pending_msgs.fetch_add(2, Ordering::Relaxed);
    shared.registration.notify_all();
    Ok(())
}

impl Transport for SocketTransport {
    fn begin_round(&mut self, _round: u64) {
        self.fold_pending();
    }

    fn send(&mut self, kind: MsgKind, client: usize, payload: &[f32]) -> Delivery {
        assert_eq!(
            kind.direction(),
            Direction::Download,
            "server-originated sends go down; uploads arrive via RemoteTransport::recv"
        );
        let data = self.codec_round_trip(payload);
        let outcome = match self.session(client) {
            Some(session) => match session.send_frame(kind.tag(), &self.wire) {
                Ok(n) => {
                    self.charge(kind, n);
                    LinkOutcome::perfect()
                }
                Err(_) => {
                    self.dropped += 1;
                    LinkOutcome {
                        delivered: false,
                        attempts: 1,
                        reason: Some(DropReason::Loss),
                    }
                }
            },
            None => {
                self.dropped += 1;
                LinkOutcome {
                    delivered: false,
                    attempts: 1,
                    reason: Some(DropReason::Loss),
                }
            }
        };
        Delivery {
            data: outcome.delivered.then_some(data),
            attempts: outcome.attempts,
            reason: outcome.reason,
        }
    }

    fn broadcast(
        &mut self,
        kind: MsgKind,
        clients: &[usize],
        payload: &[f32],
    ) -> BroadcastDelivery {
        debug_assert_eq!(kind.direction(), Direction::Download, "broadcasts go down");
        let data = self.codec_round_trip(payload);
        let mut links = Vec::with_capacity(clients.len());
        let mut delivered_bytes = 0u64;
        for &k in clients {
            let outcome = match self.session(k) {
                Some(session) => match session.send_frame(kind.tag(), &self.wire) {
                    Ok(n) => {
                        delivered_bytes += n;
                        LinkOutcome::perfect()
                    }
                    Err(_) => {
                        self.dropped += 1;
                        LinkOutcome {
                            delivered: false,
                            attempts: 1,
                            reason: Some(DropReason::Loss),
                        }
                    }
                },
                None => {
                    self.dropped += 1;
                    LinkOutcome {
                        delivered: false,
                        attempts: 1,
                        reason: Some(DropReason::Loss),
                    }
                }
            };
            links.push(outcome);
        }
        if delivered_bytes > 0 {
            self.charge(kind, delivered_bytes);
        }
        BroadcastDelivery { data, links }
    }

    fn send_raw(&mut self, kind: MsgKind, _client: usize, wire_bytes: u64) -> LinkOutcome {
        // Ledger-only charge for callers that pre-encode their own payload;
        // compressed frames that actually cross the socket go through
        // `send_compressed` / `recv_compressed` below.
        self.charge(kind, wire_bytes);
        LinkOutcome::perfect()
    }

    fn send_compressed(
        &mut self,
        kind: MsgKind,
        client: usize,
        payload: &CompressedVec,
        out: &mut CompressedVec,
    ) -> LinkOutcome {
        payload.encode_into(&mut self.body);
        let outcome = match self.session(client) {
            Some(session) => match session.send_frame(kind.tag(), &self.body) {
                Ok(n) => {
                    self.charge(kind, n);
                    LinkOutcome::perfect()
                }
                Err(_) => {
                    self.dropped += 1;
                    LinkOutcome {
                        delivered: false,
                        attempts: 1,
                        reason: Some(DropReason::Loss),
                    }
                }
            },
            None => {
                self.dropped += 1;
                LinkOutcome {
                    delivered: false,
                    attempts: 1,
                    reason: Some(DropReason::Loss),
                }
            }
        };
        if outcome.delivered {
            assert!(
                out.decode_from(&self.body),
                "codec round-trip cannot fail on a well-formed payload"
            );
        }
        outcome
    }

    fn stats(&self) -> &CommStats {
        &self.stats
    }

    fn fault_stats(&self) -> FaultStats {
        FaultStats {
            dropped: self.dropped,
            retries: self.shared.reconnects.load(Ordering::Relaxed),
            deadline_drops: self.deadline_drops,
        }
    }

    fn as_remote(&mut self) -> Option<&mut dyn RemoteTransport> {
        Some(self)
    }
}

impl RemoteTransport for SocketTransport {
    /// Claims one client-originated upload frame. The aggregation path
    /// (`Federation::fold_uploads`) calls this per selected client *in
    /// selection order* and folds each payload into the streaming
    /// accumulator as soon as its frame completes, dropping the buffer
    /// before claiming the next — the server never holds more than one
    /// decoded upload, and the fold order is pinned by the claim order, not
    /// by whichever socket happened to finish first.
    fn recv(&mut self, kind: MsgKind, client: usize) -> Delivery {
        assert_eq!(
            kind.direction(),
            Direction::Upload,
            "remote receives are client-originated uploads"
        );
        match self.recv_frame(client, kind.tag()) {
            Ok(body) => {
                let mut data = Vec::new();
                match decode_f32_into(&body, &mut data) {
                    Ok(()) => {
                        self.charge(kind, FRAME_HEADER_BYTES + body.len() as u64);
                        Delivery {
                            data: Some(data),
                            attempts: 1,
                            reason: None,
                        }
                    }
                    Err(_) => {
                        self.dropped += 1;
                        Delivery {
                            data: None,
                            attempts: 1,
                            reason: Some(DropReason::Loss),
                        }
                    }
                }
            }
            Err(reason) => {
                self.dropped += 1;
                if reason == DropReason::Deadline {
                    self.deadline_drops += 1;
                }
                Delivery {
                    data: None,
                    attempts: 1,
                    reason: Some(reason),
                }
            }
        }
    }

    fn start_training(&mut self, client: usize, round: u64, steps: usize) -> LinkOutcome {
        let out = self.send_control(
            client,
            &ControlMsg::TrainStart {
                round,
                steps: steps as u32,
            },
        );
        if out.delivered {
            if let Some(s) = self.session(client) {
                s.set_state(SessionState::InRound);
            }
        }
        out
    }

    fn recv_report(&mut self, client: usize) -> Option<LocalReport> {
        let tag = ControlMsg::Report {
            loss: 0.0,
            reg_loss: 0.0,
            steps: 0,
            examples: 0,
        }
        .tag();
        match self.recv_frame(client, tag) {
            Ok(body) => {
                self.charge_control(Direction::Upload, FRAME_HEADER_BYTES + body.len() as u64);
                if let Some(s) = self.session(client) {
                    s.set_state(SessionState::Registered);
                }
                match ControlMsg::decode_body(tag, &body) {
                    Ok(ControlMsg::Report {
                        loss,
                        reg_loss,
                        steps,
                        examples,
                    }) => Some(LocalReport {
                        loss,
                        reg_loss,
                        steps: steps as usize,
                        examples: examples as usize,
                    }),
                    _ => None,
                }
            }
            Err(reason) => {
                self.dropped += 1;
                if reason == DropReason::Deadline {
                    self.deadline_drops += 1;
                }
                None
            }
        }
    }

    fn request_delta(&mut self, client: usize, round: u64, probe_batch: usize) -> LinkOutcome {
        self.send_control(
            client,
            &ControlMsg::DeltaProbe {
                round,
                probe_batch: probe_batch as u32,
            },
        )
    }

    fn recv_compressed(
        &mut self,
        kind: MsgKind,
        client: usize,
        out: &mut CompressedVec,
    ) -> LinkOutcome {
        assert!(
            kind.is_compressed() && kind.direction() == Direction::Upload,
            "remote compressed receives are client-originated uploads"
        );
        match self.recv_frame(client, kind.tag()) {
            Ok(body) => {
                if out.decode_from(&body) {
                    // The compressed frame body IS the `CompressedVec` wire
                    // encoding: charge its true length (plus frame header),
                    // never a modelled estimate.
                    debug_assert_eq!(body.len(), out.wire_bytes());
                    self.charge(kind, FRAME_HEADER_BYTES + body.len() as u64);
                    LinkOutcome::perfect()
                } else {
                    self.dropped += 1;
                    LinkOutcome {
                        delivered: false,
                        attempts: 1,
                        reason: Some(DropReason::Loss),
                    }
                }
            }
            Err(reason) => {
                self.dropped += 1;
                if reason == DropReason::Deadline {
                    self.deadline_drops += 1;
                }
                LinkOutcome {
                    delivered: false,
                    attempts: 1,
                    reason: Some(reason),
                }
            }
        }
    }

    fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        let sessions: Vec<Arc<Session>> = {
            let guard = self.shared.sessions.lock().expect("sessions poisoned");
            guard.iter().flatten().cloned().collect()
        };
        self.body.clear();
        for session in sessions {
            if session.is_live() {
                let msg = ControlMsg::Shutdown;
                msg.encode_body(&mut self.body);
                if let Ok(n) = session.send_frame(msg.tag(), &self.body) {
                    self.charge_control(Direction::Download, n);
                }
            }
            session.close();
        }
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.fold_pending();
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A client's framed connection to an [`SocketTransport`] server.
pub struct ClientConn {
    stream: Box<dyn WireStream>,
    body: Vec<u8>,
    wire: Vec<u8>,
}

/// One frame from the server, decoded.
#[derive(Debug)]
pub enum ClientEvent {
    /// A payload frame: an `f32` vector on a [`MsgKind`] plane.
    Payload(MsgKind, Vec<f32>),
    /// A compressed payload frame in the exact `CompressedVec` encoding.
    Compressed(MsgKind, CompressedVec),
    /// A control frame.
    Control(ControlMsg),
}

impl ClientConn {
    /// Connects once.
    pub fn connect(endpoint: &Endpoint) -> io::Result<ClientConn> {
        let stream: Box<dyn WireStream> = match endpoint {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr.as_str())?;
                s.set_nodelay(true)?;
                Box::new(s)
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => Box::new(UnixStream::connect(path)?),
        };
        Ok(ClientConn {
            stream,
            body: Vec::new(),
            wire: Vec::new(),
        })
    }

    /// Connects with bounded linear backoff: attempt `i` (0-based) sleeps
    /// `i × base_delay` first. Gives a client started before its server a
    /// registration window, and bounds how long a partitioned client spins.
    pub fn connect_with_backoff(
        endpoint: &Endpoint,
        attempts: u32,
        base_delay: Duration,
    ) -> io::Result<ClientConn> {
        assert!(attempts >= 1, "need at least one attempt");
        let mut last = None;
        for i in 0..attempts {
            std::thread::sleep(base_delay * i);
            match ClientConn::connect(endpoint) {
                Ok(conn) => return Ok(conn),
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("at least one attempt failed"))
    }

    /// Registers with the server; returns the `Welcome` run configuration.
    pub fn hello(&mut self, client_id: u32, seed: u64) -> io::Result<ControlMsg> {
        self.send_control(&ControlMsg::Hello {
            magic: PROTO_MAGIC,
            version: PROTO_VERSION,
            client_id,
            seed,
        })?;
        match self.read_event()? {
            ClientEvent::Control(welcome @ ControlMsg::Welcome { .. }) => Ok(welcome),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected welcome, got {other:?}"),
            )),
        }
    }

    /// Sends a control frame.
    pub fn send_control(&mut self, msg: &ControlMsg) -> io::Result<()> {
        msg.encode_body(&mut self.body);
        write_frame(&mut self.stream, msg.tag(), &self.body)?;
        Ok(())
    }

    /// Sends an `f32` payload on `kind`'s plane (codec-encoded).
    pub fn send_payload(&mut self, kind: MsgKind, data: &[f32]) -> io::Result<()> {
        encode_f32_into(&mut self.wire, data);
        write_frame(&mut self.stream, kind.tag(), &self.wire)?;
        Ok(())
    }

    /// Sends a compressed payload in its exact `CompressedVec` wire
    /// encoding; the frame body length is `payload.wire_bytes()`.
    pub fn send_compressed(&mut self, kind: MsgKind, payload: &CompressedVec) -> io::Result<()> {
        debug_assert!(kind.is_compressed(), "kind must be a compressed plane");
        payload.encode_into(&mut self.wire);
        write_frame(&mut self.stream, kind.tag(), &self.wire)?;
        Ok(())
    }

    /// Blocks for the next frame.
    pub fn read_event(&mut self) -> io::Result<ClientEvent> {
        let (tag, body) = read_frame(&mut self.stream)?;
        if let Some(kind) = MsgKind::from_tag(tag) {
            if kind.is_compressed() {
                let payload = CompressedVec::decode(&body).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad compressed frame")
                })?;
                return Ok(ClientEvent::Compressed(kind, payload));
            }
            let mut data = Vec::new();
            decode_f32_into(&body, &mut data)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad payload codec"))?;
            return Ok(ClientEvent::Payload(kind, data));
        }
        let msg = ControlMsg::decode_body(tag, &body)
            .map_err(|e: WireError| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Ok(ClientEvent::Control(msg))
    }
}

/// Client-loop tuning knobs.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientLoopOpts {
    /// Graceful churn: after completing round `r`'s training and upload,
    /// answer its δ probe with a `Goodbye` and leave the federation.
    pub leave_after_round: Option<u64>,
    /// Upload-compression policy (normally taken from the `Welcome` frame).
    /// When enabled, model uploads go up as error-feedback-compressed
    /// `CompressedUp` frames and δ syncs as `CompressedDeltaUp` frames.
    pub compression: Compression,
}

/// How a client loop ended.
#[derive(Debug)]
pub enum ClientOutcome {
    /// The server ended the run; exit cleanly.
    Shutdown,
    /// This client left gracefully (`leave_after_round`).
    Left,
    /// The link died; the caller may reconnect and resume.
    Disconnected(io::Error),
}

/// The event-driven client half of the protocol: installs broadcast
/// parameters, trains on `TrainStart` (with the δ target received this
/// round, if any), uploads report + parameters, and answers δ probes —
/// until `Shutdown`, a graceful departure, or a dead link.
///
/// The numeric call sequence on `client` is exactly the one the in-process
/// simulation makes on its local replica, so the client's RNG stream and
/// parameter trajectory are bit-identical to the oracle's.
pub fn run_client_loop(
    conn: &mut ClientConn,
    client: &mut Client,
    lambda: f32,
    opts: &ClientLoopOpts,
) -> ClientOutcome {
    let mut pending_target: Option<Vec<f32>> = None;
    let mut flat = Vec::new();
    // Compressed-upload state: the last broadcast parameters (the update is
    // relative to them) and reused compression workspaces. The residual
    // itself lives on the `Client` so hibernation persists it.
    let mut last_global: Vec<f32> = Vec::new();
    let mut update: Vec<f32> = Vec::new();
    let mut recon: Vec<f32> = Vec::new();
    let mut payload = CompressedVec::default();
    loop {
        let event = match conn.read_event() {
            Ok(ev) => ev,
            Err(e) => return ClientOutcome::Disconnected(e),
        };
        let io_result = match event {
            ClientEvent::Payload(MsgKind::ModelDown, params) => {
                client.write_params(&params);
                last_global = params;
                Ok(())
            }
            ClientEvent::Payload(MsgKind::DeltaDown, target) => {
                pending_target = Some(target);
                Ok(())
            }
            ClientEvent::Control(ControlMsg::TrainStart { steps, .. }) => {
                let rule = match pending_target.take() {
                    Some(target) => LocalRule::Mmd {
                        lambda,
                        target: Arc::new(target),
                    },
                    None => LocalRule::Plain,
                };
                let report = client.train_local(steps as usize, &rule);
                conn.send_control(&ControlMsg::Report {
                    loss: report.loss,
                    reg_loss: report.reg_loss,
                    steps: report.steps as u32,
                    examples: report.examples as u32,
                })
                .and_then(|()| {
                    client.read_params(&mut flat);
                    if opts.compression.is_enabled() {
                        // Same arithmetic, same order, same residual fold as
                        // the in-process `fold_uploads` oracle — the frame
                        // that crosses the socket is bit-identical.
                        ef_compress_update(
                            opts.compression,
                            &flat,
                            &last_global,
                            client.residual_mut(),
                            &mut update,
                            &mut recon,
                            &mut payload,
                        );
                        conn.send_compressed(MsgKind::CompressedUp, &payload)
                    } else {
                        conn.send_payload(MsgKind::ModelUp, &flat)
                    }
                })
            }
            ClientEvent::Control(ControlMsg::DeltaProbe { round, probe_batch }) => {
                if opts.leave_after_round == Some(round) {
                    let _ = conn.send_control(&ControlMsg::Goodbye);
                    return ClientOutcome::Left;
                }
                let delta = client.compute_delta(probe_batch as usize);
                if opts.compression.is_enabled() {
                    compress_plain(opts.compression, &delta, &mut payload);
                    conn.send_compressed(MsgKind::CompressedDeltaUp, &payload)
                } else {
                    conn.send_payload(MsgKind::DeltaUp, &delta)
                }
            }
            ClientEvent::Control(ControlMsg::Shutdown) => return ClientOutcome::Shutdown,
            // Unknown-but-valid frames (e.g. a future DeltaTableDown) are
            // ignored rather than fatal; the server's deadline handles a
            // client that ignores something it needed to answer.
            _ => Ok(()),
        };
        if let Err(e) = io_result {
            return ClientOutcome::Disconnected(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        let n = write_frame(&mut buf, 0x42, b"hello").unwrap();
        assert_eq!(n, 5 + 5);
        assert_eq!(buf.len() as u64, n);
        let (tag, body) = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(tag, 0x42);
        assert_eq!(body, b"hello");
    }

    #[test]
    fn empty_body_frames_work() {
        let mut buf = Vec::new();
        write_frame(&mut buf, ControlMsg::Goodbye.tag(), &[]).unwrap();
        let (tag, body) = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(tag, ControlMsg::Goodbye.tag());
        assert!(body.is_empty());
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.push(0x01);
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 0x01, &[1, 2, 3, 4]).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(read_frame(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn endpoint_parsing() {
        assert_eq!(
            Endpoint::parse("tcp://127.0.0.1:7070").unwrap(),
            Endpoint::Tcp("127.0.0.1:7070".to_string())
        );
        #[cfg(unix)]
        {
            assert_eq!(
                Endpoint::parse("unix:/tmp/x.sock").unwrap(),
                Endpoint::Unix("/tmp/x.sock".into())
            );
            assert_eq!(
                Endpoint::parse("unix:///tmp/x.sock").unwrap(),
                Endpoint::Unix("/tmp/x.sock".into())
            );
        }
        assert!(Endpoint::parse("http://nope").is_err());
        // Display round-trips through parse.
        let e = Endpoint::parse("tcp://0.0.0.0:0").unwrap();
        assert_eq!(Endpoint::parse(&e.to_string()).unwrap(), e);
    }
}
