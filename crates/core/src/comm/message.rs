//! Typed message envelopes and delivery outcomes.
//!
//! Every payload that crosses the simulated network is tagged with a
//! [`MsgKind`] naming *what* the bytes are (model parameters, δ maps,
//! control state), which fixes the transfer direction and the accounting
//! plane (model vs δ) once, at the type level — algorithm code no longer
//! reaches into channel internals to pick counters.

use super::stats::Direction;
use crate::compress::Compression;

/// The fixed vocabulary of messages the FL protocols exchange.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgKind {
    /// Global model parameters, server → client.
    ModelDown,
    /// Locally trained model parameters, client → server.
    ModelUp,
    /// The full δ table `(δ¹, …, δᴺ)`, server → client — rFedAvg's
    /// `O(dN²)` broadcast.
    DeltaTableDown,
    /// A single averaged δ target `δ̄^{−k}`, server → client — rFedAvg+'s
    /// `O(dN)` alternative.
    DeltaDown,
    /// A client's recomputed δ map, client → server.
    DeltaUp,
    /// Algorithm control state (e.g. SCAFFOLD's variate `c`, FedPer's φ
    /// slice), server → client. Model-plane accounting.
    ControlDown,
    /// Algorithm control state (e.g. SCAFFOLD's `c_k⁺`), client → server.
    ControlUp,
    /// A compressed model update (`CompressedVec` frame), client → server.
    /// Model-plane accounting at the *encoded* byte count.
    CompressedUp,
    /// A compressed δ map (`CompressedVec` frame), client → server.
    /// δ-plane accounting at the encoded byte count.
    CompressedDeltaUp,
}

impl MsgKind {
    /// Transfer direction, from the clients' perspective.
    pub fn direction(self) -> Direction {
        match self {
            MsgKind::ModelDown
            | MsgKind::DeltaTableDown
            | MsgKind::DeltaDown
            | MsgKind::ControlDown => Direction::Download,
            MsgKind::ModelUp
            | MsgKind::DeltaUp
            | MsgKind::ControlUp
            | MsgKind::CompressedUp
            | MsgKind::CompressedDeltaUp => Direction::Upload,
        }
    }

    /// Whether the message belongs to the δ accounting plane (the Table III
    /// byte counters).
    pub fn is_delta(self) -> bool {
        matches!(
            self,
            MsgKind::DeltaTableDown
                | MsgKind::DeltaDown
                | MsgKind::DeltaUp
                | MsgKind::CompressedDeltaUp
        )
    }

    /// Whether the payload is a `CompressedVec` frame rather than a dense
    /// f32 vector.
    pub fn is_compressed(self) -> bool {
        matches!(self, MsgKind::CompressedUp | MsgKind::CompressedDeltaUp)
    }

    /// Stable wire name (trace labels, debugging).
    pub fn name(self) -> &'static str {
        match self {
            MsgKind::ModelDown => "model_down",
            MsgKind::ModelUp => "model_up",
            MsgKind::DeltaTableDown => "delta_table_down",
            MsgKind::DeltaDown => "delta_down",
            MsgKind::DeltaUp => "delta_up",
            MsgKind::ControlDown => "control_down",
            MsgKind::ControlUp => "control_up",
            MsgKind::CompressedUp => "compressed_up",
            MsgKind::CompressedDeltaUp => "compressed_delta_up",
        }
    }

    /// Stable one-byte wire tag (the socket framing layer's frame type).
    pub fn tag(self) -> u8 {
        match self {
            MsgKind::ModelDown => 0x01,
            MsgKind::ModelUp => 0x02,
            MsgKind::DeltaTableDown => 0x03,
            MsgKind::DeltaDown => 0x04,
            MsgKind::DeltaUp => 0x05,
            MsgKind::ControlDown => 0x06,
            MsgKind::ControlUp => 0x07,
            MsgKind::CompressedUp => 0x08,
            MsgKind::CompressedDeltaUp => 0x09,
        }
    }

    /// Inverse of [`MsgKind::tag`].
    pub fn from_tag(tag: u8) -> Option<MsgKind> {
        Some(match tag {
            0x01 => MsgKind::ModelDown,
            0x02 => MsgKind::ModelUp,
            0x03 => MsgKind::DeltaTableDown,
            0x04 => MsgKind::DeltaDown,
            0x05 => MsgKind::DeltaUp,
            0x06 => MsgKind::ControlDown,
            0x07 => MsgKind::ControlUp,
            0x08 => MsgKind::CompressedUp,
            0x09 => MsgKind::CompressedDeltaUp,
            _ => return None,
        })
    }
}

/// Protocol magic of the socket handshake (`b"rFL1"`, little-endian).
pub const PROTO_MAGIC: u32 = u32::from_le_bytes(*b"rFL1");

/// Wire protocol version; bumped on any framing or control-layer change.
/// v2: `Welcome` carries the upload-compression policy and the payload
/// plane gained `CompressedUp`/`CompressedDeltaUp` frames.
pub const PROTO_VERSION: u16 = 2;

/// Control frames of the socket protocol — the session/handshake vocabulary
/// that exists *next to* the [`MsgKind`] payload planes. In the in-process
/// simulation these never occur; over a real socket they carry registration,
/// round orchestration, and graceful-churn signalling.
#[derive(Clone, Debug, PartialEq)]
pub enum ControlMsg {
    /// Client → server registration: first frame on every (re)connection.
    Hello {
        /// Must equal [`PROTO_MAGIC`]; rejects stray connections early.
        magic: u32,
        /// Must equal [`PROTO_VERSION`].
        version: u16,
        /// The federation-wide client index (0-based).
        client_id: u32,
        /// The run seed the client derived its data/model/RNG from; the
        /// server rejects a mismatch instead of silently diverging.
        seed: u64,
    },
    /// Server → client handshake reply: the full run configuration, so a
    /// client needs nothing beyond `(endpoint, id, seed)` to participate.
    Welcome {
        num_clients: u32,
        rounds: u32,
        local_steps: u32,
        batch_size: u32,
        probe_batch: u32,
        /// Regularization weight λ of the rFedAvg+ MMD rule.
        lambda: f32,
        /// Local SGD learning rate.
        lr: f32,
        /// Global-norm gradient clip; `NaN` encodes `None`.
        clip_grad_norm: f32,
        seed: u64,
        /// Upload-compression policy; clients compress `CompressedUp`/
        /// `CompressedDeltaUp` frames with exactly this policy (see
        /// [`Compression::to_wire`] for the field encoding).
        compression: Compression,
    },
    /// Server → client: train `steps` local steps for `round` now, with the
    /// δ target received this round (if any), then upload report + params.
    TrainStart { round: u64, steps: u32 },
    /// Server → client: recompute δ over the full local set with a
    /// `probe_batch`-sized probe and upload it as a `DeltaUp`.
    DeltaProbe { round: u64, probe_batch: u32 },
    /// Client → server: the [`crate::client::LocalReport`] of a completed
    /// `TrainStart` (precedes the `ModelUp` payload frame).
    Report {
        loss: f32,
        reg_loss: f32,
        steps: u32,
        examples: u32,
    },
    /// Client → server: graceful departure — the session drains and every
    /// later message on the link counts as a deterministic drop.
    Goodbye,
    /// Server → client: the run is over; disconnect and exit cleanly.
    Shutdown,
}

impl ControlMsg {
    /// Stable one-byte wire tag. Control tags live above 0x0F so they can
    /// never collide with [`MsgKind::tag`] payload tags.
    pub fn tag(&self) -> u8 {
        match self {
            ControlMsg::Hello { .. } => 0x10,
            ControlMsg::Welcome { .. } => 0x11,
            ControlMsg::TrainStart { .. } => 0x12,
            ControlMsg::DeltaProbe { .. } => 0x13,
            ControlMsg::Report { .. } => 0x14,
            ControlMsg::Goodbye => 0x15,
            ControlMsg::Shutdown => 0x16,
        }
    }

    /// Stable wire name (trace labels, error messages).
    pub fn name(&self) -> &'static str {
        match self {
            ControlMsg::Hello { .. } => "hello",
            ControlMsg::Welcome { .. } => "welcome",
            ControlMsg::TrainStart { .. } => "train_start",
            ControlMsg::DeltaProbe { .. } => "delta_probe",
            ControlMsg::Report { .. } => "report",
            ControlMsg::Goodbye => "goodbye",
            ControlMsg::Shutdown => "shutdown",
        }
    }

    /// Accounting direction of the control frame (control frames are
    /// metered on the model plane, like [`MsgKind::ControlDown`]/`Up`).
    pub fn direction(&self) -> Direction {
        match self {
            ControlMsg::Hello { .. } | ControlMsg::Report { .. } | ControlMsg::Goodbye => {
                Direction::Upload
            }
            ControlMsg::Welcome { .. }
            | ControlMsg::TrainStart { .. }
            | ControlMsg::DeltaProbe { .. }
            | ControlMsg::Shutdown => Direction::Download,
        }
    }

    /// Serializes the control body (everything after the frame tag) as
    /// fixed-width little-endian fields.
    pub fn encode_body(&self, out: &mut Vec<u8>) {
        out.clear();
        match *self {
            ControlMsg::Hello {
                magic,
                version,
                client_id,
                seed,
            } => {
                out.extend_from_slice(&magic.to_le_bytes());
                out.extend_from_slice(&version.to_le_bytes());
                out.extend_from_slice(&client_id.to_le_bytes());
                out.extend_from_slice(&seed.to_le_bytes());
            }
            ControlMsg::Welcome {
                num_clients,
                rounds,
                local_steps,
                batch_size,
                probe_batch,
                lambda,
                lr,
                clip_grad_norm,
                seed,
                compression,
            } => {
                out.extend_from_slice(&num_clients.to_le_bytes());
                out.extend_from_slice(&rounds.to_le_bytes());
                out.extend_from_slice(&local_steps.to_le_bytes());
                out.extend_from_slice(&batch_size.to_le_bytes());
                out.extend_from_slice(&probe_batch.to_le_bytes());
                out.extend_from_slice(&lambda.to_le_bytes());
                out.extend_from_slice(&lr.to_le_bytes());
                out.extend_from_slice(&clip_grad_norm.to_le_bytes());
                out.extend_from_slice(&seed.to_le_bytes());
                let (mode, bits, ratio, rows, cols, comp_seed) = compression.to_wire();
                out.extend_from_slice(&mode.to_le_bytes());
                out.extend_from_slice(&bits.to_le_bytes());
                out.extend_from_slice(&ratio.to_le_bytes());
                out.extend_from_slice(&rows.to_le_bytes());
                out.extend_from_slice(&cols.to_le_bytes());
                out.extend_from_slice(&comp_seed.to_le_bytes());
            }
            ControlMsg::TrainStart { round, steps } => {
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&steps.to_le_bytes());
            }
            ControlMsg::DeltaProbe { round, probe_batch } => {
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&probe_batch.to_le_bytes());
            }
            ControlMsg::Report {
                loss,
                reg_loss,
                steps,
                examples,
            } => {
                out.extend_from_slice(&loss.to_le_bytes());
                out.extend_from_slice(&reg_loss.to_le_bytes());
                out.extend_from_slice(&steps.to_le_bytes());
                out.extend_from_slice(&examples.to_le_bytes());
            }
            ControlMsg::Goodbye | ControlMsg::Shutdown => {}
        }
    }

    /// Inverse of [`ControlMsg::encode_body`] for a frame of type `tag`.
    pub fn decode_body(tag: u8, body: &[u8]) -> Result<ControlMsg, WireError> {
        let mut r = FieldReader::new(body);
        let msg = match tag {
            0x10 => ControlMsg::Hello {
                magic: r.u32()?,
                version: r.u16()?,
                client_id: r.u32()?,
                seed: r.u64()?,
            },
            0x11 => {
                let num_clients = r.u32()?;
                let rounds = r.u32()?;
                let local_steps = r.u32()?;
                let batch_size = r.u32()?;
                let probe_batch = r.u32()?;
                let lambda = r.f32()?;
                let lr = r.f32()?;
                let clip_grad_norm = r.f32()?;
                let seed = r.u64()?;
                let (mode, bits) = (r.u8()?, r.u8()?);
                let (ratio, rows, cols, comp_seed) = (r.f32()?, r.u16()?, r.u32()?, r.u64()?);
                let compression = Compression::from_wire(mode, bits, ratio, rows, cols, comp_seed)
                    .ok_or(WireError::BadLength)?;
                ControlMsg::Welcome {
                    num_clients,
                    rounds,
                    local_steps,
                    batch_size,
                    probe_batch,
                    lambda,
                    lr,
                    clip_grad_norm,
                    seed,
                    compression,
                }
            }
            0x12 => ControlMsg::TrainStart {
                round: r.u64()?,
                steps: r.u32()?,
            },
            0x13 => ControlMsg::DeltaProbe {
                round: r.u64()?,
                probe_batch: r.u32()?,
            },
            0x14 => ControlMsg::Report {
                loss: r.f32()?,
                reg_loss: r.f32()?,
                steps: r.u32()?,
                examples: r.u32()?,
            },
            0x15 => ControlMsg::Goodbye,
            0x16 => ControlMsg::Shutdown,
            _ => return Err(WireError::UnknownTag(tag)),
        };
        r.finish()?;
        Ok(msg)
    }
}

/// A malformed frame or control body.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The frame tag names no known payload or control message.
    UnknownTag(u8),
    /// The body ended before (or after) its fixed-width fields.
    BadLength,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnknownTag(t) => write!(f, "unknown frame tag 0x{t:02x}"),
            WireError::BadLength => write!(f, "control body length mismatch"),
        }
    }
}

impl std::error::Error for WireError {}

/// Little-endian fixed-width field cursor over a control body.
struct FieldReader<'a> {
    buf: &'a [u8],
}

impl<'a> FieldReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        FieldReader { buf }
    }

    fn take<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        if self.buf.len() < N {
            return Err(WireError::BadLength);
        }
        let (head, tail) = self.buf.split_at(N);
        self.buf = tail;
        Ok(head.try_into().expect("split_at guarantees length"))
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(u8::from_le_bytes(self.take()?))
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take()?))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take()?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take()?))
    }

    fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take()?))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::BadLength)
        }
    }
}

/// Why a message did not arrive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// Every transmission attempt was lost on the link.
    Loss,
    /// The message would have arrived after the round deadline; the sender
    /// is treated as a dropout for this round.
    Deadline,
}

/// Outcome of one logical message on one link (no payload).
#[derive(Clone, Copy, Debug)]
pub struct LinkOutcome {
    /// Whether the message arrived.
    pub delivered: bool,
    /// Transmission attempts made (≥ 1); `attempts − 1` are retries.
    pub attempts: u32,
    /// Set when `delivered` is false.
    pub reason: Option<DropReason>,
}

impl LinkOutcome {
    /// The always-delivered, single-attempt outcome of a perfect link.
    pub fn perfect() -> Self {
        LinkOutcome {
            delivered: true,
            attempts: 1,
            reason: None,
        }
    }

    /// Retransmissions beyond the first attempt.
    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }
}

/// Outcome of a point-to-point send: the received payload (codec
/// round-tripped, exactly as it left the wire) when delivered.
#[derive(Clone, Debug)]
pub struct Delivery {
    /// The received copy; `None` when the message was dropped.
    pub data: Option<Vec<f32>>,
    /// Transmission attempts made (≥ 1).
    pub attempts: u32,
    /// Set when the message was dropped.
    pub reason: Option<DropReason>,
}

impl Delivery {
    pub fn is_delivered(&self) -> bool {
        self.data.is_some()
    }

    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }
}

/// Outcome of a one-to-many send: the payload is decoded once (identical
/// content for every receiver) with a per-link outcome vector parallel to
/// the destination list.
#[derive(Clone, Debug)]
pub struct BroadcastDelivery {
    /// The received copy shared by every delivered link.
    pub data: Vec<f32>,
    /// One outcome per destination, in destination order.
    pub links: Vec<LinkOutcome>,
}

impl BroadcastDelivery {
    /// The subset of `clients` whose link delivered, in order.
    pub fn delivered_clients(&self, clients: &[usize]) -> Vec<usize> {
        debug_assert_eq!(clients.len(), self.links.len());
        clients
            .iter()
            .zip(&self.links)
            .filter(|(_, l)| l.delivered)
            .map(|(&k, _)| k)
            .collect()
    }

    /// Number of links that dropped.
    pub fn dropped(&self) -> u64 {
        self.links.iter().filter(|l| !l.delivered).count() as u64
    }
}

/// Message-level fault counters, accumulated over a transport's lifetime.
/// All zeros on a perfect transport.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages that never arrived (all attempts lost, or deadline).
    pub dropped: u64,
    /// Retransmissions (attempts beyond the first, delivered or not).
    pub retries: u64,
    /// Subset of `dropped` caused by the round deadline.
    pub deadline_drops: u64,
}

impl FaultStats {
    /// Difference against an earlier snapshot (per-round accounting).
    pub fn since(&self, snapshot: &FaultStats) -> FaultStats {
        FaultStats {
            dropped: self.dropped - snapshot.dropped,
            retries: self.retries - snapshot.retries,
            deadline_drops: self.deadline_drops - snapshot.deadline_drops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_direction_and_plane() {
        assert_eq!(MsgKind::ModelDown.direction(), Direction::Download);
        assert_eq!(MsgKind::DeltaUp.direction(), Direction::Upload);
        assert_eq!(MsgKind::ControlUp.direction(), Direction::Upload);
        assert!(MsgKind::DeltaTableDown.is_delta());
        assert!(MsgKind::DeltaDown.is_delta());
        assert!(MsgKind::DeltaUp.is_delta());
        assert!(!MsgKind::ModelDown.is_delta());
        assert!(!MsgKind::ControlDown.is_delta());
    }

    #[test]
    fn broadcast_delivery_filters_delivered() {
        let bd = BroadcastDelivery {
            data: vec![1.0],
            links: vec![
                LinkOutcome::perfect(),
                LinkOutcome {
                    delivered: false,
                    attempts: 2,
                    reason: Some(DropReason::Loss),
                },
                LinkOutcome::perfect(),
            ],
        };
        assert_eq!(bd.delivered_clients(&[3, 5, 9]), vec![3, 9]);
        assert_eq!(bd.dropped(), 1);
    }

    #[test]
    fn msg_kind_tags_round_trip() {
        for kind in [
            MsgKind::ModelDown,
            MsgKind::ModelUp,
            MsgKind::DeltaTableDown,
            MsgKind::DeltaDown,
            MsgKind::DeltaUp,
            MsgKind::ControlDown,
            MsgKind::ControlUp,
            MsgKind::CompressedUp,
            MsgKind::CompressedDeltaUp,
        ] {
            assert_eq!(MsgKind::from_tag(kind.tag()), Some(kind));
            assert!(kind.tag() < 0x10, "payload tags stay below control tags");
        }
        assert_eq!(MsgKind::from_tag(0x00), None);
        assert_eq!(MsgKind::from_tag(0x10), None);
    }

    #[test]
    fn compressed_kinds_keep_their_planes() {
        assert_eq!(MsgKind::CompressedUp.direction(), Direction::Upload);
        assert_eq!(MsgKind::CompressedDeltaUp.direction(), Direction::Upload);
        assert!(!MsgKind::CompressedUp.is_delta());
        assert!(MsgKind::CompressedDeltaUp.is_delta());
        assert!(MsgKind::CompressedUp.is_compressed());
        assert!(MsgKind::CompressedDeltaUp.is_compressed());
        assert!(!MsgKind::ModelUp.is_compressed());
    }

    #[test]
    fn control_msgs_round_trip() {
        let msgs = [
            ControlMsg::Hello {
                magic: PROTO_MAGIC,
                version: PROTO_VERSION,
                client_id: 3,
                seed: 7,
            },
            ControlMsg::Welcome {
                num_clients: 4,
                rounds: 2,
                local_steps: 2,
                batch_size: 16,
                probe_batch: 32,
                lambda: 1e-3,
                lr: 0.05,
                clip_grad_norm: 10.0,
                seed: 7,
                compression: Compression::None,
            },
            ControlMsg::Welcome {
                num_clients: 4,
                rounds: 2,
                local_steps: 2,
                batch_size: 16,
                probe_batch: 32,
                lambda: 1e-3,
                lr: 0.05,
                clip_grad_norm: 10.0,
                seed: 7,
                compression: Compression::Adaptive { max_bits: 8 },
            },
            ControlMsg::Welcome {
                num_clients: 4,
                rounds: 2,
                local_steps: 2,
                batch_size: 16,
                probe_batch: 32,
                lambda: 1e-3,
                lr: 0.05,
                clip_grad_norm: 10.0,
                seed: 7,
                compression: Compression::Sketch {
                    rows: 5,
                    cols: 401,
                    seed: 11,
                },
            },
            ControlMsg::TrainStart { round: 1, steps: 2 },
            ControlMsg::DeltaProbe {
                round: 1,
                probe_batch: 32,
            },
            ControlMsg::Report {
                loss: 1.5,
                reg_loss: 0.25,
                steps: 2,
                examples: 32,
            },
            ControlMsg::Goodbye,
            ControlMsg::Shutdown,
        ];
        let mut body = Vec::new();
        for msg in msgs {
            msg.encode_body(&mut body);
            let back = ControlMsg::decode_body(msg.tag(), &body).expect("round trip");
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn control_decode_rejects_garbage() {
        assert_eq!(
            ControlMsg::decode_body(0xFF, &[]),
            Err(WireError::UnknownTag(0xFF))
        );
        // Truncated TrainStart body.
        assert_eq!(
            ControlMsg::decode_body(0x12, &[0; 4]),
            Err(WireError::BadLength)
        );
        // Trailing bytes are an error, not silently ignored.
        assert_eq!(
            ControlMsg::decode_body(0x15, &[0]),
            Err(WireError::BadLength)
        );
    }

    #[test]
    fn nan_clip_encodes_none() {
        let mut body = Vec::new();
        ControlMsg::Welcome {
            num_clients: 1,
            rounds: 1,
            local_steps: 1,
            batch_size: 1,
            probe_batch: 1,
            lambda: 0.0,
            lr: 0.1,
            clip_grad_norm: f32::NAN,
            seed: 0,
            compression: Compression::None,
        }
        .encode_body(&mut body);
        match ControlMsg::decode_body(0x11, &body).unwrap() {
            ControlMsg::Welcome { clip_grad_norm, .. } => assert!(clip_grad_norm.is_nan()),
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn fault_stats_since() {
        let a = FaultStats {
            dropped: 5,
            retries: 7,
            deadline_drops: 2,
        };
        let b = FaultStats {
            dropped: 2,
            retries: 3,
            deadline_drops: 1,
        };
        assert_eq!(
            a.since(&b),
            FaultStats {
                dropped: 3,
                retries: 4,
                deadline_drops: 1,
            }
        );
    }
}
