//! Typed message envelopes and delivery outcomes.
//!
//! Every payload that crosses the simulated network is tagged with a
//! [`MsgKind`] naming *what* the bytes are (model parameters, δ maps,
//! control state), which fixes the transfer direction and the accounting
//! plane (model vs δ) once, at the type level — algorithm code no longer
//! reaches into channel internals to pick counters.

use super::stats::Direction;

/// The fixed vocabulary of messages the FL protocols exchange.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgKind {
    /// Global model parameters, server → client.
    ModelDown,
    /// Locally trained model parameters, client → server.
    ModelUp,
    /// The full δ table `(δ¹, …, δᴺ)`, server → client — rFedAvg's
    /// `O(dN²)` broadcast.
    DeltaTableDown,
    /// A single averaged δ target `δ̄^{−k}`, server → client — rFedAvg+'s
    /// `O(dN)` alternative.
    DeltaDown,
    /// A client's recomputed δ map, client → server.
    DeltaUp,
    /// Algorithm control state (e.g. SCAFFOLD's variate `c`, FedPer's φ
    /// slice), server → client. Model-plane accounting.
    ControlDown,
    /// Algorithm control state (e.g. SCAFFOLD's `c_k⁺`), client → server.
    ControlUp,
}

impl MsgKind {
    /// Transfer direction, from the clients' perspective.
    pub fn direction(self) -> Direction {
        match self {
            MsgKind::ModelDown
            | MsgKind::DeltaTableDown
            | MsgKind::DeltaDown
            | MsgKind::ControlDown => Direction::Download,
            MsgKind::ModelUp | MsgKind::DeltaUp | MsgKind::ControlUp => Direction::Upload,
        }
    }

    /// Whether the message belongs to the δ accounting plane (the Table III
    /// byte counters).
    pub fn is_delta(self) -> bool {
        matches!(
            self,
            MsgKind::DeltaTableDown | MsgKind::DeltaDown | MsgKind::DeltaUp
        )
    }

    /// Stable wire name (trace labels, debugging).
    pub fn name(self) -> &'static str {
        match self {
            MsgKind::ModelDown => "model_down",
            MsgKind::ModelUp => "model_up",
            MsgKind::DeltaTableDown => "delta_table_down",
            MsgKind::DeltaDown => "delta_down",
            MsgKind::DeltaUp => "delta_up",
            MsgKind::ControlDown => "control_down",
            MsgKind::ControlUp => "control_up",
        }
    }
}

/// Why a message did not arrive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// Every transmission attempt was lost on the link.
    Loss,
    /// The message would have arrived after the round deadline; the sender
    /// is treated as a dropout for this round.
    Deadline,
}

/// Outcome of one logical message on one link (no payload).
#[derive(Clone, Copy, Debug)]
pub struct LinkOutcome {
    /// Whether the message arrived.
    pub delivered: bool,
    /// Transmission attempts made (≥ 1); `attempts − 1` are retries.
    pub attempts: u32,
    /// Set when `delivered` is false.
    pub reason: Option<DropReason>,
}

impl LinkOutcome {
    /// The always-delivered, single-attempt outcome of a perfect link.
    pub fn perfect() -> Self {
        LinkOutcome {
            delivered: true,
            attempts: 1,
            reason: None,
        }
    }

    /// Retransmissions beyond the first attempt.
    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }
}

/// Outcome of a point-to-point send: the received payload (codec
/// round-tripped, exactly as it left the wire) when delivered.
#[derive(Clone, Debug)]
pub struct Delivery {
    /// The received copy; `None` when the message was dropped.
    pub data: Option<Vec<f32>>,
    /// Transmission attempts made (≥ 1).
    pub attempts: u32,
    /// Set when the message was dropped.
    pub reason: Option<DropReason>,
}

impl Delivery {
    pub fn is_delivered(&self) -> bool {
        self.data.is_some()
    }

    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }
}

/// Outcome of a one-to-many send: the payload is decoded once (identical
/// content for every receiver) with a per-link outcome vector parallel to
/// the destination list.
#[derive(Clone, Debug)]
pub struct BroadcastDelivery {
    /// The received copy shared by every delivered link.
    pub data: Vec<f32>,
    /// One outcome per destination, in destination order.
    pub links: Vec<LinkOutcome>,
}

impl BroadcastDelivery {
    /// The subset of `clients` whose link delivered, in order.
    pub fn delivered_clients(&self, clients: &[usize]) -> Vec<usize> {
        debug_assert_eq!(clients.len(), self.links.len());
        clients
            .iter()
            .zip(&self.links)
            .filter(|(_, l)| l.delivered)
            .map(|(&k, _)| k)
            .collect()
    }

    /// Number of links that dropped.
    pub fn dropped(&self) -> u64 {
        self.links.iter().filter(|l| !l.delivered).count() as u64
    }
}

/// Message-level fault counters, accumulated over a transport's lifetime.
/// All zeros on a perfect transport.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages that never arrived (all attempts lost, or deadline).
    pub dropped: u64,
    /// Retransmissions (attempts beyond the first, delivered or not).
    pub retries: u64,
    /// Subset of `dropped` caused by the round deadline.
    pub deadline_drops: u64,
}

impl FaultStats {
    /// Difference against an earlier snapshot (per-round accounting).
    pub fn since(&self, snapshot: &FaultStats) -> FaultStats {
        FaultStats {
            dropped: self.dropped - snapshot.dropped,
            retries: self.retries - snapshot.retries,
            deadline_drops: self.deadline_drops - snapshot.deadline_drops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_direction_and_plane() {
        assert_eq!(MsgKind::ModelDown.direction(), Direction::Download);
        assert_eq!(MsgKind::DeltaUp.direction(), Direction::Upload);
        assert_eq!(MsgKind::ControlUp.direction(), Direction::Upload);
        assert!(MsgKind::DeltaTableDown.is_delta());
        assert!(MsgKind::DeltaDown.is_delta());
        assert!(MsgKind::DeltaUp.is_delta());
        assert!(!MsgKind::ModelDown.is_delta());
        assert!(!MsgKind::ControlDown.is_delta());
    }

    #[test]
    fn broadcast_delivery_filters_delivered() {
        let bd = BroadcastDelivery {
            data: vec![1.0],
            links: vec![
                LinkOutcome::perfect(),
                LinkOutcome {
                    delivered: false,
                    attempts: 2,
                    reason: Some(DropReason::Loss),
                },
                LinkOutcome::perfect(),
            ],
        };
        assert_eq!(bd.delivered_clients(&[3, 5, 9]), vec![3, 9]);
        assert_eq!(bd.dropped(), 1);
    }

    #[test]
    fn fault_stats_since() {
        let a = FaultStats {
            dropped: 5,
            retries: 7,
            deadline_drops: 2,
        };
        let b = FaultStats {
            dropped: 2,
            retries: 3,
            deadline_drops: 1,
        };
        assert_eq!(
            a.since(&b),
            FaultStats {
                dropped: 3,
                retries: 4,
                deadline_drops: 1,
            }
        );
    }
}
