//! Communication accounting.

/// Transfer direction, from the clients' perspective.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Server → client (broadcast).
    Download,
    /// Client → server (upload).
    Upload,
}

/// Byte counters for one training run. Every scalar that crosses the
/// simulated network is counted through [`crate::comm::Channel`], so these
/// numbers are the ground truth behind Table III and the efficiency figures.
#[derive(Clone, Debug, Default)]
pub struct CommStats {
    down_bytes: u64,
    up_bytes: u64,
    /// Bytes attributable to δ maps only (regularizer state).
    delta_down_bytes: u64,
    delta_up_bytes: u64,
    messages: u64,
}

impl CommStats {
    pub fn new() -> Self {
        CommStats::default()
    }

    /// Records a model-plane transfer of `bytes`.
    pub fn record(&mut self, dir: Direction, bytes: u64) {
        match dir {
            Direction::Download => self.down_bytes += bytes,
            Direction::Upload => self.up_bytes += bytes,
        }
        self.messages += 1;
    }

    /// Records a δ-plane transfer of `bytes` (also counted in the totals).
    pub fn record_delta(&mut self, dir: Direction, bytes: u64) {
        match dir {
            Direction::Download => self.delta_down_bytes += bytes,
            Direction::Upload => self.delta_up_bytes += bytes,
        }
        self.record(dir, bytes);
    }

    pub fn download_bytes(&self) -> u64 {
        self.down_bytes
    }

    pub fn upload_bytes(&self) -> u64 {
        self.up_bytes
    }

    pub fn total_bytes(&self) -> u64 {
        self.down_bytes + self.up_bytes
    }

    /// δ-map bytes (both directions) — the quantity of Table III.
    pub fn delta_bytes(&self) -> u64 {
        self.delta_down_bytes + self.delta_up_bytes
    }

    pub fn delta_download_bytes(&self) -> u64 {
        self.delta_down_bytes
    }

    pub fn delta_upload_bytes(&self) -> u64 {
        self.delta_up_bytes
    }

    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Folds handshake traffic metered outside the round loop (by the
    /// socket reactor) into the ledger. Handshakes come in hello/welcome
    /// pairs, so half of `msgs` went up and half came down; the first
    /// record on each side carries the accumulated bytes, the rest only
    /// bump the message count. Byte-exact by construction: the counters
    /// end up identical to charging each handshake frame individually.
    pub fn fold_handshakes(&mut self, up_bytes: u64, down_bytes: u64, msgs: u64) {
        for i in 0..msgs / 2 {
            self.record(Direction::Upload, if i == 0 { up_bytes } else { 0 });
            self.record(Direction::Download, if i == 0 { down_bytes } else { 0 });
        }
    }

    /// Difference against an earlier snapshot (per-round accounting).
    pub fn since(&self, snapshot: &CommStats) -> CommStats {
        CommStats {
            down_bytes: self.down_bytes - snapshot.down_bytes,
            up_bytes: self.up_bytes - snapshot.up_bytes,
            delta_down_bytes: self.delta_down_bytes - snapshot.delta_down_bytes,
            delta_up_bytes: self.delta_up_bytes - snapshot.delta_up_bytes,
            messages: self.messages - snapshot.messages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_by_direction() {
        let mut s = CommStats::new();
        s.record(Direction::Download, 100);
        s.record(Direction::Upload, 40);
        s.record(Direction::Download, 1);
        assert_eq!(s.download_bytes(), 101);
        assert_eq!(s.upload_bytes(), 40);
        assert_eq!(s.total_bytes(), 141);
        assert_eq!(s.messages(), 3);
    }

    #[test]
    fn delta_bytes_tracked_separately_but_included_in_total() {
        let mut s = CommStats::new();
        s.record_delta(Direction::Download, 50);
        s.record(Direction::Upload, 10);
        assert_eq!(s.delta_bytes(), 50);
        assert_eq!(s.total_bytes(), 60);
    }

    /// Pins the double-count invariant: `record_delta` forwards to `record`,
    /// so δ bytes appear in BOTH the δ counters and the directional totals.
    /// Table III and the efficiency figures rely on `total_bytes` already
    /// including the δ plane — if this ever changes, every consumer that
    /// sums `total_bytes + delta_bytes` would silently double-charge.
    #[test]
    fn record_delta_double_counts_into_totals() {
        let mut s = CommStats::new();
        s.record_delta(Direction::Download, 30);
        s.record_delta(Direction::Upload, 12);
        // δ counters see exactly the δ traffic...
        assert_eq!(s.delta_download_bytes(), 30);
        assert_eq!(s.delta_upload_bytes(), 12);
        assert_eq!(s.delta_bytes(), 42);
        // ...and the directional totals include it too (the invariant).
        assert_eq!(s.download_bytes(), 30);
        assert_eq!(s.upload_bytes(), 12);
        assert_eq!(s.total_bytes(), 42);
    }

    /// A δ transfer is one message, not two, even though it increments two
    /// byte counters.
    #[test]
    fn record_delta_counts_one_message() {
        let mut s = CommStats::new();
        s.record_delta(Direction::Download, 8);
        assert_eq!(s.messages(), 1);
        s.record(Direction::Upload, 8);
        assert_eq!(s.messages(), 2);
        s.record_delta(Direction::Upload, 8);
        assert_eq!(s.messages(), 3);
    }

    #[test]
    fn zero_byte_transfers_still_count_as_messages() {
        let mut s = CommStats::new();
        s.record(Direction::Download, 0);
        s.record_delta(Direction::Upload, 0);
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.messages(), 2);
    }

    /// Folding N handshake pairs must equal charging each frame directly:
    /// same bytes, same message count, byte totals carried by the first
    /// record on each side.
    #[test]
    fn fold_handshakes_matches_per_frame_charging() {
        let mut folded = CommStats::new();
        folded.fold_handshakes(3 * 21, 3 * 64, 6);
        let mut direct = CommStats::new();
        for _ in 0..3 {
            direct.record(Direction::Upload, 21);
            direct.record(Direction::Download, 64);
        }
        assert_eq!(folded.upload_bytes(), direct.upload_bytes());
        assert_eq!(folded.download_bytes(), direct.download_bytes());
        assert_eq!(folded.messages(), direct.messages());
        // An odd leftover message (handshake cut off mid-pair) folds nothing.
        let mut odd = CommStats::new();
        odd.fold_handshakes(10, 10, 1);
        assert_eq!(odd.messages(), 0);
        assert_eq!(odd.total_bytes(), 0);
    }

    #[test]
    fn since_computes_differences() {
        let mut s = CommStats::new();
        s.record(Direction::Download, 10);
        let snap = s.clone();
        s.record(Direction::Upload, 5);
        s.record_delta(Direction::Upload, 7);
        let d = s.since(&snap);
        assert_eq!(d.download_bytes(), 0);
        assert_eq!(d.upload_bytes(), 12);
        assert_eq!(d.delta_bytes(), 7);
        assert_eq!(d.messages(), 2);
    }
}
