//! Communication accounting.

/// Transfer direction, from the clients' perspective.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Server → client (broadcast).
    Download,
    /// Client → server (upload).
    Upload,
}

/// Byte counters for one training run. Every scalar that crosses the
/// simulated network is counted through [`crate::comm::Channel`], so these
/// numbers are the ground truth behind Table III and the efficiency figures.
#[derive(Clone, Debug, Default)]
pub struct CommStats {
    down_bytes: u64,
    up_bytes: u64,
    /// Bytes attributable to δ maps only (regularizer state).
    delta_down_bytes: u64,
    delta_up_bytes: u64,
    messages: u64,
}

impl CommStats {
    pub fn new() -> Self {
        CommStats::default()
    }

    /// Records a model-plane transfer of `bytes`.
    pub fn record(&mut self, dir: Direction, bytes: u64) {
        match dir {
            Direction::Download => self.down_bytes += bytes,
            Direction::Upload => self.up_bytes += bytes,
        }
        self.messages += 1;
    }

    /// Records a δ-plane transfer of `bytes` (also counted in the totals).
    pub fn record_delta(&mut self, dir: Direction, bytes: u64) {
        match dir {
            Direction::Download => self.delta_down_bytes += bytes,
            Direction::Upload => self.delta_up_bytes += bytes,
        }
        self.record(dir, bytes);
    }

    pub fn download_bytes(&self) -> u64 {
        self.down_bytes
    }

    pub fn upload_bytes(&self) -> u64 {
        self.up_bytes
    }

    pub fn total_bytes(&self) -> u64 {
        self.down_bytes + self.up_bytes
    }

    /// δ-map bytes (both directions) — the quantity of Table III.
    pub fn delta_bytes(&self) -> u64 {
        self.delta_down_bytes + self.delta_up_bytes
    }

    pub fn delta_download_bytes(&self) -> u64 {
        self.delta_down_bytes
    }

    pub fn delta_upload_bytes(&self) -> u64 {
        self.delta_up_bytes
    }

    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Difference against an earlier snapshot (per-round accounting).
    pub fn since(&self, snapshot: &CommStats) -> CommStats {
        CommStats {
            down_bytes: self.down_bytes - snapshot.down_bytes,
            up_bytes: self.up_bytes - snapshot.up_bytes,
            delta_down_bytes: self.delta_down_bytes - snapshot.delta_down_bytes,
            delta_up_bytes: self.delta_up_bytes - snapshot.delta_up_bytes,
            messages: self.messages - snapshot.messages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_by_direction() {
        let mut s = CommStats::new();
        s.record(Direction::Download, 100);
        s.record(Direction::Upload, 40);
        s.record(Direction::Download, 1);
        assert_eq!(s.download_bytes(), 101);
        assert_eq!(s.upload_bytes(), 40);
        assert_eq!(s.total_bytes(), 141);
        assert_eq!(s.messages(), 3);
    }

    #[test]
    fn delta_bytes_tracked_separately_but_included_in_total() {
        let mut s = CommStats::new();
        s.record_delta(Direction::Download, 50);
        s.record(Direction::Upload, 10);
        assert_eq!(s.delta_bytes(), 50);
        assert_eq!(s.total_bytes(), 60);
    }

    /// Pins the double-count invariant: `record_delta` forwards to `record`,
    /// so δ bytes appear in BOTH the δ counters and the directional totals.
    /// Table III and the efficiency figures rely on `total_bytes` already
    /// including the δ plane — if this ever changes, every consumer that
    /// sums `total_bytes + delta_bytes` would silently double-charge.
    #[test]
    fn record_delta_double_counts_into_totals() {
        let mut s = CommStats::new();
        s.record_delta(Direction::Download, 30);
        s.record_delta(Direction::Upload, 12);
        // δ counters see exactly the δ traffic...
        assert_eq!(s.delta_download_bytes(), 30);
        assert_eq!(s.delta_upload_bytes(), 12);
        assert_eq!(s.delta_bytes(), 42);
        // ...and the directional totals include it too (the invariant).
        assert_eq!(s.download_bytes(), 30);
        assert_eq!(s.upload_bytes(), 12);
        assert_eq!(s.total_bytes(), 42);
    }

    /// A δ transfer is one message, not two, even though it increments two
    /// byte counters.
    #[test]
    fn record_delta_counts_one_message() {
        let mut s = CommStats::new();
        s.record_delta(Direction::Download, 8);
        assert_eq!(s.messages(), 1);
        s.record(Direction::Upload, 8);
        assert_eq!(s.messages(), 2);
        s.record_delta(Direction::Upload, 8);
        assert_eq!(s.messages(), 3);
    }

    #[test]
    fn zero_byte_transfers_still_count_as_messages() {
        let mut s = CommStats::new();
        s.record(Direction::Download, 0);
        s.record_delta(Direction::Upload, 0);
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.messages(), 2);
    }

    #[test]
    fn since_computes_differences() {
        let mut s = CommStats::new();
        s.record(Direction::Download, 10);
        let snap = s.clone();
        s.record(Direction::Upload, 5);
        s.record_delta(Direction::Upload, 7);
        let d = s.since(&snap);
        assert_eq!(d.download_bytes(), 0);
        assert_eq!(d.upload_bytes(), 12);
        assert_eq!(d.delta_bytes(), 7);
        assert_eq!(d.messages(), 2);
    }
}
