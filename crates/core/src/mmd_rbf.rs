//! Gaussian-kernel (RBF) MMD — the general RKHS estimator of Eq. (2).
//!
//! The paper instantiates `φ` with the network feature extractor and a
//! linear kernel (so MMD² reduces to `‖δ_i − δ_j‖²`); this module provides
//! the full biased V-statistic estimator with an RBF kernel
//! `k(x, y) = exp(−γ‖x − y‖²)` for diagnostics and the kernel ablation:
//! it detects distribution differences beyond the first moment.

use rfl_tensor::{exp_slices, sq_dist_slices, sq_dists_to_rows, sum_slices, Tensor};

/// `k(x, y) = exp(−γ‖x − y‖²)` summed over all pairs of rows of `a`, `b`.
///
/// The inner `j` loop is batched: one [`sq_dists_to_rows`] pass per row of
/// `a`, then a single vectorized `exp(−γ·d)` over the whole distance row —
/// the `−γ` multiply is hoisted into the kernel's `scale` operand instead of
/// being applied per pair. Row sums are accumulated in f64 to keep the
/// O(N²)-term statistic stable; [`mean_kernel_pairwise_f64`] is the
/// per-pair f64 oracle.
fn mean_kernel(a: &Tensor, b: &Tensor, gamma: f32) -> f64 {
    let (na, d) = (a.dims()[0], a.dims()[1]);
    let nb = b.dims()[0];
    let ad = a.data();
    let bd = b.data();
    let mut row = vec![0.0f32; nb];
    let mut sum = 0.0f64;
    for i in 0..na {
        let ai = &ad[i * d..(i + 1) * d];
        sq_dists_to_rows(ai, bd, d, &mut row);
        exp_slices(&mut row, -gamma, 0.0);
        sum += sum_slices(&row) as f64;
    }
    sum / (na as f64 * nb as f64)
}

/// Reference implementation of [`mean_kernel`]: per-pair `exp` in f64, no
/// batching. Kept as the oracle for the kernel ablation and the equivalence
/// test below.
pub fn mean_kernel_pairwise_f64(a: &Tensor, b: &Tensor, gamma: f32) -> f64 {
    let (na, d) = (a.dims()[0], a.dims()[1]);
    let nb = b.dims()[0];
    let ad = a.data();
    let bd = b.data();
    let mut sum = 0.0f64;
    for i in 0..na {
        let ai = &ad[i * d..(i + 1) * d];
        for j in 0..nb {
            let bj = &bd[j * d..(j + 1) * d];
            sum += (-gamma as f64 * sq_dist_slices(ai, bj) as f64).exp();
        }
    }
    sum / (na as f64 * nb as f64)
}

/// Biased (V-statistic) squared MMD with an RBF kernel between two sample
/// matrices `[n, d]` and `[m, d]`.
pub fn rbf_mmd_sq(x: &Tensor, y: &Tensor, gamma: f32) -> f64 {
    assert_eq!(x.ndim(), 2);
    assert_eq!(y.ndim(), 2);
    assert_eq!(x.dims()[1], y.dims()[1], "feature dims differ");
    assert!(gamma > 0.0, "γ must be positive");
    mean_kernel(x, x, gamma) + mean_kernel(y, y, gamma) - 2.0 * mean_kernel(x, y, gamma)
}

/// Median-heuristic bandwidth: `γ = 1 / median(‖x_i − x_j‖²)` over the
/// pooled samples (a standard automatic choice).
pub fn median_heuristic_gamma(x: &Tensor, y: &Tensor) -> f32 {
    let d = x.dims()[1];
    assert_eq!(y.dims()[1], d);
    let (nx, ny) = (x.dims()[0], y.dims()[0]);
    let (xd, yd) = (x.data(), y.data());
    let mut dists = Vec::new();
    let mut row = vec![0.0f32; nx.max(ny)];
    // All unordered pairs of the pooled rows, one batched distance pass per
    // query row: x_i vs the x rows after it, x_i vs all of y, y_i vs the y
    // rows after it.
    let push = |row: &[f32], dists: &mut Vec<f32>| {
        dists.extend(row.iter().copied().filter(|&v| v > 0.0));
    };
    for i in 0..nx {
        let xi = &xd[i * d..(i + 1) * d];
        let rest = nx - i - 1;
        sq_dists_to_rows(xi, &xd[(i + 1) * d..], d, &mut row[..rest]);
        push(&row[..rest], &mut dists);
        sq_dists_to_rows(xi, yd, d, &mut row[..ny]);
        push(&row[..ny], &mut dists);
    }
    for i in 0..ny {
        let yi = &yd[i * d..(i + 1) * d];
        let rest = ny - i - 1;
        sq_dists_to_rows(yi, &yd[(i + 1) * d..], d, &mut row[..rest]);
        push(&row[..rest], &mut dists);
    }
    if dists.is_empty() {
        return 1.0;
    }
    dists.sort_by(|a, b| a.total_cmp(b));
    let median = dists[dists.len() / 2];
    1.0 / median.max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfl_tensor::{normal_sample, Initializer};

    fn gaussian(n: usize, d: usize, mean: f32, std: f32, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Tensor::zeros(&[n, d]);
        for v in t.data_mut() {
            *v = mean + std * normal_sample(&mut rng);
        }
        t
    }

    #[test]
    fn identical_samples_give_zero() {
        let x = gaussian(20, 3, 0.0, 1.0, 0);
        let m = rbf_mmd_sq(&x, &x, 0.5);
        assert!(m.abs() < 1e-6, "{m}");
    }

    #[test]
    fn shifted_distributions_are_detected() {
        let x = gaussian(40, 3, 0.0, 1.0, 1);
        let y = gaussian(40, 3, 3.0, 1.0, 2);
        let same = gaussian(40, 3, 0.0, 1.0, 3);
        let gamma = median_heuristic_gamma(&x, &y);
        let far = rbf_mmd_sq(&x, &y, gamma);
        let near = rbf_mmd_sq(&x, &same, gamma);
        assert!(far > 5.0 * near.max(1e-4), "far {far} near {near}");
    }

    /// The property linear MMD misses: equal means, different variances.
    #[test]
    fn detects_variance_difference_that_linear_mmd_misses() {
        // 500 samples: the linear statistic is the distance of the two
        // sample means, which is O(1/n) noise here — at n = 150 an unlucky
        // draw can push it above the margin this test asserts.
        let x = gaussian(500, 2, 0.0, 0.3, 4);
        let y = gaussian(500, 2, 0.0, 2.0, 5);
        // Linear MMD (distance of means) shrinks with n (both means → 0).
        let mu_x = x.mean_axis0().into_vec();
        let mu_y = y.mean_axis0().into_vec();
        let linear = crate::mmd::mmd_sq(&mu_x, &mu_y);
        // RBF MMD stays clearly positive: it sees the variance gap.
        let gamma = median_heuristic_gamma(&x, &y);
        let rbf = rbf_mmd_sq(&x, &y, gamma);
        assert!(linear < 0.2, "linear MMD should be small: {linear}");
        assert!(rbf > 0.1, "RBF MMD should detect the variance gap: {rbf}");
        assert!(rbf > 4.0 * linear as f64, "rbf {rbf} vs linear {linear}");
    }

    #[test]
    fn symmetric_and_nonnegative() {
        let x = gaussian(15, 4, 0.0, 1.0, 6);
        let y = gaussian(17, 4, 1.0, 1.5, 7);
        let a = rbf_mmd_sq(&x, &y, 0.3);
        let b = rbf_mmd_sq(&y, &x, 0.3);
        // The batched f32 exp sums kxy and kyx with different row groupings,
        // so symmetry holds to f32 rounding, not f64 exactness.
        assert!((a - b).abs() < 1e-5 * a.abs().max(1.0), "{a} vs {b}");
        assert!(a >= -1e-5);
    }

    /// The batched kernel-mean must agree with the per-pair f64 oracle —
    /// the accuracy pin for the hoisted-γ vectorized `exp` path.
    #[test]
    fn batched_mean_kernel_matches_f64_pairwise_oracle() {
        let x = gaussian(19, 5, 0.0, 1.0, 9);
        let y = gaussian(23, 5, 0.5, 1.2, 10);
        for gamma in [0.05f32, 0.3, 2.0] {
            let fast = rbf_mmd_sq(&x, &y, gamma);
            let oracle = mean_kernel_pairwise_f64(&x, &x, gamma)
                + mean_kernel_pairwise_f64(&y, &y, gamma)
                - 2.0 * mean_kernel_pairwise_f64(&x, &y, gamma);
            assert!(
                (fast - oracle).abs() < 1e-4 * oracle.abs().max(1e-3),
                "γ={gamma}: {fast} vs {oracle}"
            );
        }
    }

    #[test]
    fn median_heuristic_is_scale_aware() {
        let mut rng = StdRng::seed_from_u64(8);
        let small = Initializer::Normal(0.1).init(&[20, 3], &mut rng);
        let big = Initializer::Normal(10.0).init(&[20, 3], &mut rng);
        let g_small = median_heuristic_gamma(&small, &small);
        let g_big = median_heuristic_gamma(&big, &big);
        assert!(g_small > 100.0 * g_big, "{g_small} vs {g_big}");
    }
}
