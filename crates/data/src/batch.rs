//! Mini-batch sampling.

use rand::seq::SliceRandom;
use rand::Rng;

/// Samples mini-batch index sets, cycling through a reshuffled permutation of
/// the dataset each epoch (the sampling scheme of FedAvg's local training).
pub struct BatchSampler {
    n: usize,
    batch_size: usize,
    order: Vec<usize>,
    cursor: usize,
}

impl BatchSampler {
    /// # Panics
    /// Panics on an empty dataset or zero batch size.
    pub fn new(n: usize, batch_size: usize) -> Self {
        assert!(n > 0, "empty dataset");
        assert!(batch_size > 0, "zero batch size");
        BatchSampler {
            n,
            batch_size: batch_size.min(n),
            order: (0..n).collect(),
            // Start exhausted so the very first batch comes from a fresh
            // shuffle (otherwise every sampler would begin with 0, 1, 2, …).
            cursor: n,
        }
    }

    /// Effective batch size (clamped to the dataset size).
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Next batch of indices; reshuffles when the epoch is exhausted.
    pub fn next_batch<R: Rng>(&mut self, rng: &mut R) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.batch_size);
        self.next_batch_into(rng, &mut out);
        out
    }

    /// [`Self::next_batch`] into a caller-provided buffer (cleared first;
    /// its allocation is reused across steps). Draws from the same RNG
    /// stream, so the index sequence is identical to `next_batch`.
    pub fn next_batch_into<R: Rng>(&mut self, rng: &mut R, out: &mut Vec<usize>) {
        if self.cursor + self.batch_size > self.n {
            self.order.shuffle(rng);
            self.cursor = 0;
        }
        out.clear();
        out.extend_from_slice(&self.order[self.cursor..self.cursor + self.batch_size]);
        self.cursor += self.batch_size;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn batches_have_requested_size() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = BatchSampler::new(10, 3);
        for _ in 0..20 {
            assert_eq!(s.next_batch(&mut rng).len(), 3);
        }
    }

    #[test]
    fn covers_every_index_within_an_epoch() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = BatchSampler::new(9, 3);
        let mut seen = [false; 9];
        for _ in 0..3 {
            for i in s.next_batch(&mut rng) {
                assert!(!seen[i], "index {i} repeated within epoch");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn clamps_batch_to_dataset_size() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = BatchSampler::new(4, 100);
        assert_eq!(s.batch_size(), 4);
        assert_eq!(s.next_batch(&mut rng).len(), 4);
    }

    #[test]
    fn indices_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = BatchSampler::new(7, 2);
        for _ in 0..50 {
            assert!(s.next_batch(&mut rng).iter().all(|&i| i < 7));
        }
    }
}
