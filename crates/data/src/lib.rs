//! # rfl-data
//!
//! Synthetic federated datasets and non-IID partitioners for the rFedAvg
//! reproduction.
//!
//! The paper evaluates on MNIST, CIFAR10, Sent140, and FEMNIST. Those
//! corpora are not available offline, so this crate provides *statistically
//! analogous synthetic generators* (see `DESIGN.md` §3 for the substitution
//! arguments) plus every partitioning scheme the paper uses:
//!
//! * [`partition::similarity`] — the paper's label-skew scheme: allocate
//!   `s%` of the data IID, sort the rest by label, and deal contiguous
//!   shards to clients (`s = 0%` totally non-IID, `s = 100%` IID);
//! * [`partition::iid`] — uniform shuffle-and-deal;
//! * [`partition::by_user`] — group samples by their generating user
//!   (Sent140/FEMNIST-style natural feature + quantity skew);
//! * [`partition::dirichlet`] — label-Dirichlet skew (a common alternative,
//!   used by ablation experiments);
//! * [`partition::quantity_skew`] — power-law quantity skew.
//!
//! ```
//! use rfl_data::synth::image::SynthImageSpec;
//! use rfl_data::partition;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let ds = SynthImageSpec::mnist_like().generate(200, &mut rng);
//! let parts = partition::similarity(ds.labels(), 10, 0.0, &mut rng);
//! assert_eq!(parts.len(), 10);
//! ```

pub mod batch;
pub mod dataset;
pub mod io;
pub mod partition;
pub mod stats;
pub mod synth;

pub use batch::BatchSampler;
pub use dataset::{gather_rows_into, Dataset, Examples, FederatedData};
