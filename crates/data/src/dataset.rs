//! Dataset containers shared by all benchmarks.

use rfl_tensor::Tensor;

/// The example payload of a dataset.
#[derive(Clone, Debug)]
pub enum Examples {
    /// Image batch `[N, C, H, W]`.
    Images(Tensor),
    /// Fixed-length token sequences.
    Tokens(Vec<Vec<u32>>),
    /// Dense feature batch `[N, D]`.
    Dense(Tensor),
}

impl Examples {
    /// Number of examples.
    pub fn len(&self) -> usize {
        match self {
            Examples::Images(t) | Examples::Dense(t) => t.dims()[0],
            Examples::Tokens(s) => s.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Gathers the examples at `indices` into a new payload.
    pub fn select(&self, indices: &[usize]) -> Examples {
        assert!(!indices.is_empty(), "cannot select an empty subset");
        match self {
            Examples::Images(t) => Examples::Images(gather_rows(t, indices)),
            Examples::Dense(t) => Examples::Dense(gather_rows(t, indices)),
            Examples::Tokens(s) => {
                Examples::Tokens(indices.iter().map(|&i| s[i].clone()).collect())
            }
        }
    }
}

/// Concatenates two tensors along dim 0 (all other dims must match).
fn concat_rows(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.dims()[1..], b.dims()[1..], "trailing dims mismatch");
    let mut dims = a.dims().to_vec();
    dims[0] += b.dims()[0];
    let mut data = Vec::with_capacity(a.numel() + b.numel());
    data.extend_from_slice(a.data());
    data.extend_from_slice(b.data());
    Tensor::from_vec(data, &dims)
}

/// Gathers rows (dim-0 slices) of a tensor.
fn gather_rows(t: &Tensor, indices: &[usize]) -> Tensor {
    let mut out = Tensor::scratch();
    gather_rows_into(t, indices, &mut out);
    out
}

/// Gathers rows (dim-0 slices) of a tensor into a caller-provided
/// destination. The destination is resized (a no-op when the shape already
/// matches, so warm mini-batch loops gather without allocating) and every
/// element is overwritten.
pub fn gather_rows_into(t: &Tensor, indices: &[usize], out: &mut Tensor) {
    let row = t.numel() / t.dims()[0];
    let nd = t.ndim();
    assert!(nd <= 8, "gather_rows_into supports up to 8 dims");
    let mut dims = [0usize; 8];
    dims[..nd].copy_from_slice(t.dims());
    dims[0] = indices.len();
    out.resize(&dims[..nd]);
    let src = t.data();
    let dst = out.data_mut();
    for (o, &i) in indices.iter().enumerate() {
        dst[o * row..(o + 1) * row].copy_from_slice(&src[i * row..(i + 1) * row]);
    }
}

/// A labelled dataset.
#[derive(Clone, Debug)]
pub struct Dataset {
    examples: Examples,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// # Panics
    /// Panics if lengths disagree or any label is out of range.
    pub fn new(examples: Examples, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(examples.len(), labels.len(), "examples/labels length");
        assert!(
            labels.iter().all(|&y| y < num_classes),
            "label out of range"
        );
        Dataset {
            examples,
            labels,
            num_classes,
        }
    }

    pub fn len(&self) -> usize {
        self.labels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    pub fn examples(&self) -> &Examples {
        &self.examples
    }

    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Subset at `indices` (copies the data).
    pub fn select(&self, indices: &[usize]) -> Dataset {
        Dataset {
            examples: self.examples.select(indices),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            num_classes: self.num_classes,
        }
    }

    /// Splits into `(train, held_out)` with `frac` of samples in train,
    /// after a seeded shuffle. Both halves must be non-empty.
    ///
    /// # Panics
    /// Panics if `frac` leaves either side empty.
    pub fn split<R: rand::Rng>(&self, frac: f64, rng: &mut R) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&frac));
        use rand::seq::SliceRandom;
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        let cut = ((self.len() as f64) * frac).round() as usize;
        assert!(cut > 0 && cut < self.len(), "split leaves an empty side");
        (self.select(&order[..cut]), self.select(&order[cut..]))
    }

    /// Concatenates two datasets with identical payload kind and class
    /// count.
    ///
    /// # Panics
    /// Panics on mismatched kinds or class counts.
    pub fn merge(&self, other: &Dataset) -> Dataset {
        assert_eq!(self.num_classes, other.num_classes, "class count mismatch");
        let examples = match (&self.examples, &other.examples) {
            (Examples::Images(a), Examples::Images(b)) => Examples::Images(concat_rows(a, b)),
            (Examples::Dense(a), Examples::Dense(b)) => Examples::Dense(concat_rows(a, b)),
            (Examples::Tokens(a), Examples::Tokens(b)) => {
                let mut v = a.clone();
                v.extend(b.iter().cloned());
                Examples::Tokens(v)
            }
            _ => panic!("cannot merge datasets of different payload kinds"),
        };
        let mut labels = self.labels.clone();
        labels.extend_from_slice(&other.labels);
        Dataset::new(examples, labels, self.num_classes)
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &y in &self.labels {
            counts[y] += 1;
        }
        counts
    }
}

/// A federated view: one dataset per client plus a held-out test set.
#[derive(Clone, Debug)]
pub struct FederatedData {
    pub clients: Vec<Dataset>,
    pub test: Dataset,
}

impl FederatedData {
    /// Builds a federated split from a pooled train set and index partition.
    pub fn from_partition(train: &Dataset, parts: &[Vec<usize>], test: Dataset) -> Self {
        let clients = parts.iter().map(|idx| train.select(idx)).collect();
        FederatedData { clients, test }
    }

    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// FedAvg aggregation weights `p_k = n_k / Σ n_j`.
    pub fn client_weights(&self) -> Vec<f32> {
        let total: usize = self.clients.iter().map(|c| c.len()).sum();
        assert!(total > 0, "no training data");
        self.clients
            .iter()
            .map(|c| c.len() as f32 / total as f32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image_dataset(n: usize) -> Dataset {
        let x = Tensor::from_vec((0..n * 4).map(|v| v as f32).collect(), &[n, 1, 2, 2]);
        let labels = (0..n).map(|i| i % 3).collect();
        Dataset::new(Examples::Images(x), labels, 3)
    }

    #[test]
    fn select_copies_the_right_rows() {
        let ds = image_dataset(5);
        let sub = ds.select(&[0, 3]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.labels(), &[0, 0]);
        match sub.examples() {
            Examples::Images(t) => {
                assert_eq!(t.dims(), &[2, 1, 2, 2]);
                assert_eq!(&t.data()[0..4], &[0.0, 1.0, 2.0, 3.0]);
                assert_eq!(&t.data()[4..8], &[12.0, 13.0, 14.0, 15.0]);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn tokens_select() {
        let ds = Dataset::new(
            Examples::Tokens(vec![vec![1, 2], vec![3, 4], vec![5, 6]]),
            vec![0, 1, 0],
            2,
        );
        let sub = ds.select(&[2]);
        match sub.examples() {
            Examples::Tokens(s) => assert_eq!(s, &vec![vec![5, 6]]),
            _ => unreachable!(),
        }
    }

    #[test]
    fn class_counts() {
        let ds = image_dataset(7);
        assert_eq!(ds.class_counts(), vec![3, 2, 2]);
    }

    #[test]
    fn client_weights_sum_to_one() {
        let ds = image_dataset(6);
        let parts = vec![vec![0, 1, 2], vec![3], vec![4, 5]];
        let fed = FederatedData::from_partition(&ds, &parts, image_dataset(2));
        let w = fed.client_weights();
        assert_eq!(w.len(), 3);
        assert!((w.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!((w[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn split_partitions_all_samples() {
        use rand::SeedableRng;
        let ds = image_dataset(10);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let (a, b) = ds.split(0.7, &mut rng);
        assert_eq!(a.len(), 7);
        assert_eq!(b.len(), 3);
        let mut counts = a.class_counts();
        for (c, v) in b.class_counts().iter().enumerate() {
            counts[c] += v;
        }
        assert_eq!(counts, ds.class_counts());
    }

    #[test]
    fn merge_concatenates() {
        let a = image_dataset(3);
        let b = image_dataset(2);
        let m = a.merge(&b);
        assert_eq!(m.len(), 5);
        assert_eq!(&m.labels()[..3], a.labels());
        assert_eq!(&m.labels()[3..], b.labels());
        match m.examples() {
            Examples::Images(t) => assert_eq!(t.dims(), &[5, 1, 2, 2]),
            _ => unreachable!(),
        }
    }

    #[test]
    #[should_panic(expected = "empty side")]
    fn split_rejects_degenerate_fraction() {
        use rand::SeedableRng;
        let ds = image_dataset(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        ds.split(0.0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        Dataset::new(Examples::Dense(Tensor::zeros(&[1, 2])), vec![5], 3);
    }
}
