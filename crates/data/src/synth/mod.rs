//! Synthetic dataset generators.
//!
//! Each generator is a statistically analogous stand-in for one of the
//! paper's benchmarks (DESIGN.md §3 documents the substitution arguments):
//!
//! * [`image`] — prototype-mixture images for the MNIST-like and
//!   CIFAR10-like benchmarks;
//! * [`femnist`] — 62-class images with per-writer style distortion and
//!   quantity skew (FEMNIST-like);
//! * [`text`] — per-user token sequences with lexicon-driven sentiment
//!   labels (Sent140-like);
//! * [`gaussian`] — dense Gaussian mixtures for the strongly convex
//!   convergence experiments.

pub mod femnist;
pub mod gaussian;
pub mod image;
pub mod text;
