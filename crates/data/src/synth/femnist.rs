//! FEMNIST-like generator: 62-class images with per-writer style distortion
//! and quantity skew.
//!
//! FEMNIST federates Extended-MNIST by *writer*; different writers render
//! the same character differently. We reproduce this as a per-writer affine
//! style (translation + shear + stroke-intensity scale) applied to the class
//! prototype before noise — a natural *feature-distribution* skew, combined
//! with power-law *quantity* skew over writers.

use crate::dataset::{Dataset, Examples};
use crate::synth::image::SynthImageSpec;
use rand::Rng;
use rfl_tensor::{normal_sample, Tensor};

/// Specification of the FEMNIST-like benchmark.
#[derive(Clone, Copy, Debug)]
pub struct FemnistSpec {
    pub classes: usize,
    pub size: usize,
    pub noise_std: f32,
    /// Maximum per-writer translation in pixels.
    pub max_shift: i32,
    /// Maximum per-writer shear factor.
    pub max_shear: f32,
    /// Power-law exponent for writer sample counts.
    pub quantity_gamma: f64,
    pub proto_seed: u64,
}

impl FemnistSpec {
    pub fn default_spec() -> Self {
        FemnistSpec {
            classes: 62,
            size: 16,
            noise_std: 0.45,
            max_shift: 2,
            max_shear: 0.35,
            quantity_gamma: 1.0,
            proto_seed: 44,
        }
    }

    fn image_spec(&self) -> SynthImageSpec {
        SynthImageSpec {
            classes: self.classes,
            channels: 1,
            size: self.size,
            noise_std: self.noise_std,
            class_sep: 1.0,
            jitter: 0.0,
            proto_seed: self.proto_seed,
        }
    }

    /// A writer's style, drawn once per writer.
    fn writer_style<R: Rng>(&self, rng: &mut R) -> WriterStyle {
        WriterStyle {
            dx: rng.gen_range(-self.max_shift..=self.max_shift),
            dy: rng.gen_range(-self.max_shift..=self.max_shift),
            shear: rng.gen_range(-self.max_shear..=self.max_shear),
            intensity: rng.gen_range(0.7..1.3),
        }
    }

    /// Generates `total` samples over `writers` writers.
    ///
    /// Returns the pooled dataset together with the writer (user) id of each
    /// sample, ready for [`crate::partition::by_user`].
    pub fn generate_writers<R: Rng>(
        &self,
        writers: usize,
        total: usize,
        rng: &mut R,
    ) -> (Dataset, Vec<usize>) {
        assert!(writers > 0 && total >= writers);
        let protos = self.image_spec().prototypes();
        let px = self.size * self.size;

        // Power-law writer sizes (same largest-remainder allocation as
        // partition::quantity_skew, but sizes belong to the generator here).
        let weights: Vec<f64> = (0..writers)
            .map(|k| ((k + 1) as f64).powf(-self.quantity_gamma))
            .collect();
        let wsum: f64 = weights.iter().sum();
        let spare = total - writers;
        let mut sizes: Vec<usize> = weights
            .iter()
            .map(|w| (w / wsum * spare as f64).floor() as usize + 1)
            .collect();
        let mut assigned: usize = sizes.iter().sum();
        let mut k = 0;
        while assigned < total {
            sizes[k % writers] += 1;
            assigned += 1;
            k += 1;
        }
        while assigned > total {
            let i = sizes
                .iter()
                .position(|&s| s > 1)
                .expect("shrinkable writer");
            sizes[i] -= 1;
            assigned -= 1;
        }

        let mut x = Tensor::zeros(&[total, 1, self.size, self.size]);
        let mut labels = Vec::with_capacity(total);
        let mut users = Vec::with_capacity(total);
        let mut row = 0usize;
        for (writer, &count) in sizes.iter().enumerate() {
            let style = self.writer_style(rng);
            for _ in 0..count {
                let y = rng.gen_range(0..self.classes);
                labels.push(y);
                users.push(writer);
                let proto = &protos.data()[y * px..(y + 1) * px];
                let styled = style.apply(proto, self.size);
                let dst = &mut x.data_mut()[row * px..(row + 1) * px];
                for (d, &p) in dst.iter_mut().zip(&styled) {
                    *d = p + self.noise_std * normal_sample(rng);
                }
                row += 1;
            }
        }
        (
            Dataset::new(Examples::Images(x), labels, self.classes),
            users,
        )
    }
}

/// A writer's rendering style.
#[derive(Clone, Copy, Debug)]
struct WriterStyle {
    dx: i32,
    dy: i32,
    shear: f32,
    intensity: f32,
}

impl WriterStyle {
    /// Applies shear + translation (nearest-neighbour resample) and
    /// intensity scaling to a `size × size` image.
    fn apply(&self, img: &[f32], size: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; size * size];
        let c = size as f32 / 2.0;
        for y in 0..size {
            for x in 0..size {
                // Inverse map: source = shear^-1(translate^-1(dest)).
                let ty = y as i32 - self.dy;
                let tx_f = x as f32 - self.dx as f32 - self.shear * (y as f32 - c);
                let tx = tx_f.round() as i32;
                if ty >= 0 && (ty as usize) < size && tx >= 0 && (tx as usize) < size {
                    out[y * size + x] = self.intensity * img[ty as usize * size + tx as usize];
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_total_and_user_ids() {
        let mut rng = StdRng::seed_from_u64(0);
        let (ds, users) = FemnistSpec::default_spec().generate_writers(20, 300, &mut rng);
        assert_eq!(ds.len(), 300);
        assert_eq!(users.len(), 300);
        assert!(users.iter().all(|&u| u < 20));
        // Every writer produced at least one sample.
        let parts = partition::by_user(&users);
        assert_eq!(parts.len(), 20);
        assert!(partition::is_valid_partition(&parts, 300));
    }

    #[test]
    fn quantity_skew_is_present() {
        let mut rng = StdRng::seed_from_u64(1);
        let (_, users) = FemnistSpec::default_spec().generate_writers(20, 1000, &mut rng);
        let parts = partition::by_user(&users);
        let max = parts.iter().map(|p| p.len()).max().unwrap();
        let min = parts.iter().map(|p| p.len()).min().unwrap();
        assert!(max >= 3 * min, "max {max} min {min}");
    }

    #[test]
    fn style_identity_is_noop() {
        let style = WriterStyle {
            dx: 0,
            dy: 0,
            shear: 0.0,
            intensity: 1.0,
        };
        let img: Vec<f32> = (0..16).map(|v| v as f32).collect();
        assert_eq!(style.apply(&img, 4), img);
    }

    #[test]
    fn translation_moves_pixels() {
        let style = WriterStyle {
            dx: 1,
            dy: 0,
            shear: 0.0,
            intensity: 1.0,
        };
        let mut img = vec![0.0f32; 16];
        img[0] = 5.0; // pixel (0,0)
        let out = style.apply(&img, 4);
        assert_eq!(out[1], 5.0); // moved to (0,1)
        assert_eq!(out[0], 0.0);
    }

    #[test]
    fn labels_span_62_classes() {
        let mut rng = StdRng::seed_from_u64(2);
        let (ds, _) = FemnistSpec::default_spec().generate_writers(10, 3000, &mut rng);
        let counts = ds.class_counts();
        let nonzero = counts.iter().filter(|&&c| c > 0).count();
        assert!(nonzero > 55, "only {nonzero} classes present");
    }
}
