//! Gaussian-mixture dense datasets for the strongly convex convergence
//! experiments (Theorems 1 and 2).

use crate::dataset::{Dataset, Examples};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfl_tensor::{normal_fill, Tensor};

/// Specification of a Gaussian-mixture classification problem.
#[derive(Clone, Copy, Debug)]
pub struct GaussianMixtureSpec {
    pub dim: usize,
    pub classes: usize,
    /// Distance scale between class means.
    pub sep: f32,
    /// Within-class standard deviation.
    pub noise: f32,
    /// Seed for the class means.
    pub mean_seed: u64,
}

impl GaussianMixtureSpec {
    pub fn default_spec() -> Self {
        GaussianMixtureSpec {
            dim: 10,
            classes: 4,
            sep: 2.0,
            noise: 1.0,
            mean_seed: 45,
        }
    }

    /// The class means `[classes, dim]` implied by `mean_seed`.
    pub fn means(&self) -> Tensor {
        let mut rng = StdRng::seed_from_u64(self.mean_seed);
        let mut m = Tensor::zeros(&[self.classes, self.dim]);
        normal_fill(&mut rng, m.data_mut());
        let scale = (self.dim as f32).sqrt();
        for v in m.data_mut() {
            *v = self.sep * *v / scale;
        }
        m
    }

    /// Generates `n` balanced samples, optionally with a per-client feature
    /// shift (`shift` added to every sample — the non-IID mechanism for the
    /// convex experiments; pass `None` for the IID pool / test set).
    pub fn generate<R: Rng>(&self, n: usize, shift: Option<&[f32]>, rng: &mut R) -> Dataset {
        self.generate_with_means(&self.means(), n, shift, rng)
    }

    /// [`Self::generate`] with the class means precomputed by the caller.
    /// At registry scale the means are identical for every client of a
    /// source, so callers materializing thousands of clients per round hoist
    /// the `means()` recomputation out of the per-client path; passing
    /// `self.means()` here is exactly `generate`.
    pub fn generate_with_means<R: Rng>(
        &self,
        means: &Tensor,
        n: usize,
        shift: Option<&[f32]>,
        rng: &mut R,
    ) -> Dataset {
        if let Some(s) = shift {
            assert_eq!(s.len(), self.dim, "shift dimension mismatch");
        }
        assert_eq!(means.dims(), &[self.classes, self.dim], "means shape");
        let mut x = Tensor::zeros(&[n, self.dim]);
        let mut labels = Vec::with_capacity(n);
        // One batched draw for the whole matrix: the draw order matches the
        // old per-element `normal_sample` loop exactly, and the per-element
        // arithmetic below keeps the original rounding order, so every value
        // is bit-identical to the scalar formulation.
        normal_fill(rng, x.data_mut());
        for i in 0..n {
            let y = i % self.classes;
            labels.push(y);
            let mu = means.row(y);
            let dst = &mut x.data_mut()[i * self.dim..(i + 1) * self.dim];
            match shift {
                Some(s) => {
                    for (j, d) in dst.iter_mut().enumerate() {
                        *d = mu[j] + self.noise * *d + s[j];
                    }
                }
                None => {
                    for (j, d) in dst.iter_mut().enumerate() {
                        *d = mu[j] + self.noise * *d + 0.0;
                    }
                }
            }
        }
        Dataset::new(Examples::Dense(x), labels, self.classes)
    }

    /// A random feature-shift vector of norm `magnitude`.
    pub fn random_shift<R: Rng>(&self, magnitude: f32, rng: &mut R) -> Vec<f32> {
        let mut v = vec![0.0f32; self.dim];
        normal_fill(rng, &mut v);
        let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
        for x in &mut v {
            *x *= magnitude / norm;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_balanced_dense_data() {
        let mut rng = StdRng::seed_from_u64(0);
        let spec = GaussianMixtureSpec::default_spec();
        let ds = spec.generate(40, None, &mut rng);
        assert_eq!(ds.len(), 40);
        assert_eq!(ds.class_counts(), vec![10, 10, 10, 10]);
        match ds.examples() {
            Examples::Dense(t) => assert_eq!(t.dims(), &[40, 10]),
            _ => unreachable!(),
        }
    }

    #[test]
    fn shift_translates_the_cloud() {
        let spec = GaussianMixtureSpec::default_spec();
        let shift = vec![10.0; 10];
        let a = spec.generate(100, None, &mut StdRng::seed_from_u64(1));
        let b = spec.generate(100, Some(&shift), &mut StdRng::seed_from_u64(1));
        let (ta, tb) = match (a.examples(), b.examples()) {
            (Examples::Dense(ta), Examples::Dense(tb)) => (ta, tb),
            _ => unreachable!(),
        };
        let diff = tb.sub(ta);
        assert!((diff.mean() - 10.0).abs() < 1e-4);
    }

    #[test]
    fn random_shift_has_requested_norm() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = GaussianMixtureSpec::default_spec();
        let s = spec.random_shift(3.0, &mut rng);
        let norm = s.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((norm - 3.0).abs() < 1e-4);
    }

    #[test]
    fn means_are_deterministic() {
        let spec = GaussianMixtureSpec::default_spec();
        assert_eq!(spec.means(), spec.means());
    }
}
