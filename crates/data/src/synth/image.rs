//! Prototype-mixture image generator (MNIST-like / CIFAR10-like).
//!
//! Each class has a fixed low-frequency prototype image (a coarse random
//! grid, bilinearly upsampled). A sample is its class prototype plus
//! Gaussian pixel noise and — for the CIFAR-like preset — random contrast
//! and brightness jitter. The prototypes are derived from `proto_seed` only,
//! so train/test splits and all clients share the same class structure.

use crate::dataset::{Dataset, Examples};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfl_tensor::{normal_sample, Tensor};

/// Specification of a synthetic image benchmark.
#[derive(Clone, Copy, Debug)]
pub struct SynthImageSpec {
    pub classes: usize,
    pub channels: usize,
    pub size: usize,
    /// Pixel noise standard deviation; the main difficulty knob.
    pub noise_std: f32,
    /// Scale of the class prototypes (class separation).
    pub class_sep: f32,
    /// Strength of per-sample contrast/brightness jitter (0 disables).
    pub jitter: f32,
    /// Seed for the class prototypes (not for the samples).
    pub proto_seed: u64,
}

impl SynthImageSpec {
    /// Easy benchmark standing in for MNIST: low noise, well-separated
    /// classes — every FL method reaches high accuracy even at sim 0%.
    pub fn mnist_like() -> Self {
        SynthImageSpec {
            classes: 10,
            channels: 1,
            size: 16,
            noise_std: 0.7,
            class_sep: 1.0,
            jitter: 0.0,
            proto_seed: 42,
        }
    }

    /// Hard benchmark standing in for CIFAR10: heavy noise, weakly separated
    /// classes, contrast jitter — a large IID/non-IID accuracy gap.
    pub fn cifar_like() -> Self {
        SynthImageSpec {
            classes: 10,
            channels: 3,
            size: 16,
            noise_std: 1.0,
            class_sep: 0.55,
            jitter: 0.35,
            proto_seed: 43,
        }
    }

    /// The class prototypes `[classes, C, H, W]` implied by `proto_seed`.
    pub fn prototypes(&self) -> Tensor {
        let mut rng = StdRng::seed_from_u64(self.proto_seed);
        let coarse = 4usize;
        let mut protos = Tensor::zeros(&[self.classes, self.channels, self.size, self.size]);
        for c in 0..self.classes {
            for ch in 0..self.channels {
                // Coarse random grid.
                let grid: Vec<f32> = (0..coarse * coarse)
                    .map(|_| self.class_sep * normal_sample(&mut rng))
                    .collect();
                // Bilinear upsample to size × size.
                for y in 0..self.size {
                    for x in 0..self.size {
                        let fy = y as f32 / self.size as f32 * (coarse - 1) as f32;
                        let fx = x as f32 / self.size as f32 * (coarse - 1) as f32;
                        let (y0, x0) = (fy.floor() as usize, fx.floor() as usize);
                        let (y1, x1) = ((y0 + 1).min(coarse - 1), (x0 + 1).min(coarse - 1));
                        let (ty, tx) = (fy - y0 as f32, fx - x0 as f32);
                        let v = grid[y0 * coarse + x0] * (1.0 - ty) * (1.0 - tx)
                            + grid[y0 * coarse + x1] * (1.0 - ty) * tx
                            + grid[y1 * coarse + x0] * ty * (1.0 - tx)
                            + grid[y1 * coarse + x1] * ty * tx;
                        *protos.at_mut(&[c, ch, y, x]) = v;
                    }
                }
            }
        }
        protos
    }

    /// Generates `n` labelled samples (labels cycle through the classes so
    /// the pool is class-balanced).
    pub fn generate<R: Rng>(&self, n: usize, rng: &mut R) -> Dataset {
        let protos = self.prototypes();
        let px = self.channels * self.size * self.size;
        let mut x = Tensor::zeros(&[n, self.channels, self.size, self.size]);
        let mut labels = Vec::with_capacity(n);
        let xd = x.data_mut();
        let pd = protos.data();
        for i in 0..n {
            let y = i % self.classes;
            labels.push(y);
            let contrast = if self.jitter > 0.0 {
                1.0 + self.jitter * (rng.gen::<f32>() * 2.0 - 1.0)
            } else {
                1.0
            };
            let brightness = if self.jitter > 0.0 {
                self.jitter * (rng.gen::<f32>() * 2.0 - 1.0)
            } else {
                0.0
            };
            let proto = &pd[y * px..(y + 1) * px];
            let dst = &mut xd[i * px..(i + 1) * px];
            for (d, &p) in dst.iter_mut().zip(proto) {
                *d = contrast * p + brightness + self.noise_std * normal_sample(rng);
            }
        }
        Dataset::new(Examples::Images(x), labels, self.classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfl_tensor::sq_dist_slices;

    #[test]
    fn generates_requested_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let ds = SynthImageSpec::mnist_like().generate(25, &mut rng);
        assert_eq!(ds.len(), 25);
        match ds.examples() {
            Examples::Images(t) => assert_eq!(t.dims(), &[25, 1, 16, 16]),
            _ => unreachable!(),
        }
        assert_eq!(ds.num_classes(), 10);
    }

    #[test]
    fn labels_are_balanced() {
        let mut rng = StdRng::seed_from_u64(1);
        let ds = SynthImageSpec::mnist_like().generate(100, &mut rng);
        assert!(ds.class_counts().iter().all(|&c| c == 10));
    }

    #[test]
    fn prototypes_are_deterministic_in_proto_seed() {
        let a = SynthImageSpec::mnist_like().prototypes();
        let b = SynthImageSpec::mnist_like().prototypes();
        assert_eq!(a, b);
        let mut other = SynthImageSpec::mnist_like();
        other.proto_seed = 7;
        assert_ne!(other.prototypes(), a);
    }

    #[test]
    fn same_class_is_closer_than_cross_class() {
        // Core learnability property: intra-class distance < inter-class
        // distance on average (for the easy preset).
        let mut rng = StdRng::seed_from_u64(2);
        let spec = SynthImageSpec::mnist_like();
        let ds = spec.generate(200, &mut rng);
        let t = match ds.examples() {
            Examples::Images(t) => t,
            _ => unreachable!(),
        };
        let px = 256;
        let d = t.data();
        let (mut intra, mut inter) = (0.0f64, 0.0f64);
        let (mut ni, mut nx) = (0usize, 0usize);
        for i in 0..50 {
            for j in (i + 1)..50 {
                let dist =
                    sq_dist_slices(&d[i * px..(i + 1) * px], &d[j * px..(j + 1) * px]) as f64;
                if ds.labels()[i] == ds.labels()[j] {
                    intra += dist;
                    ni += 1;
                } else {
                    inter += dist;
                    nx += 1;
                }
            }
        }
        assert!(intra / ni as f64 * 1.2 < inter / nx as f64);
    }

    #[test]
    fn cifar_like_is_noisier_than_mnist_like() {
        let mut rng = StdRng::seed_from_u64(3);
        let easy = SynthImageSpec::mnist_like().generate(60, &mut rng);
        let hard = SynthImageSpec::cifar_like().generate(60, &mut rng);
        // Signal-to-noise proxy: prototype norm over noise std.
        let snr = |spec: &SynthImageSpec| spec.class_sep / spec.noise_std;
        assert!(snr(&SynthImageSpec::cifar_like()) < snr(&SynthImageSpec::mnist_like()));
        let _ = (easy, hard);
    }

    #[test]
    fn samples_vary_with_rng() {
        let spec = SynthImageSpec::mnist_like();
        let a = spec.generate(10, &mut StdRng::seed_from_u64(4));
        let b = spec.generate(10, &mut StdRng::seed_from_u64(5));
        match (a.examples(), b.examples()) {
            (Examples::Images(ta), Examples::Images(tb)) => assert_ne!(ta, tb),
            _ => unreachable!(),
        }
    }
}
