//! Sent140-like generator: per-user token sequences with lexicon-driven
//! sentiment labels.
//!
//! Sent140 is naturally non-IID by Twitter user: users differ in vocabulary
//! (feature skew), tweet volume (quantity skew), and sentiment base rate
//! (label skew). We reproduce all three:
//!
//! * the vocabulary is split into a positive lexicon, a negative lexicon,
//!   and filler tokens;
//! * each user has a preferred *window* into the lexicons and fillers
//!   (feature skew), a sentiment base rate (label skew), and a power-law
//!   sample count (quantity skew);
//! * the label is decided first; tokens are then drawn from the label's
//!   lexicon with probability `sentiment_rate`, else from the user's
//!   filler window.

use crate::dataset::{Dataset, Examples};
use rand::Rng;

/// Specification of the Sent140-like benchmark.
#[derive(Clone, Copy, Debug)]
pub struct SynthTextSpec {
    pub vocab: usize,
    pub seq_len: usize,
    /// Number of tokens in each sentiment lexicon.
    pub lexicon_size: usize,
    /// Probability that a token is drawn from the label's lexicon.
    pub sentiment_rate: f64,
    /// Width of a user's preferred lexicon/filler window.
    pub user_window: usize,
    /// Power-law exponent for user sample counts.
    pub quantity_gamma: f64,
}

impl SynthTextSpec {
    pub fn sent140_like() -> Self {
        SynthTextSpec {
            vocab: 128,
            seq_len: 16,
            lexicon_size: 40,
            sentiment_rate: 0.18,
            user_window: 12,
            quantity_gamma: 0.8,
        }
    }

    fn positive_range(&self) -> std::ops::Range<u32> {
        1..(1 + self.lexicon_size as u32)
    }

    fn negative_range(&self) -> std::ops::Range<u32> {
        let lo = 1 + self.lexicon_size as u32;
        lo..lo + self.lexicon_size as u32
    }

    fn filler_range(&self) -> std::ops::Range<u32> {
        (1 + 2 * self.lexicon_size as u32)..self.vocab as u32
    }

    /// Generates `total` tweets over `users` users. Returns the pooled
    /// dataset (binary labels: 0 = negative, 1 = positive) and per-sample
    /// user ids for [`crate::partition::by_user`].
    pub fn generate_users<R: Rng>(
        &self,
        users: usize,
        total: usize,
        rng: &mut R,
    ) -> (Dataset, Vec<usize>) {
        assert!(users > 0 && total >= users);
        assert!(self.vocab > 1 + 2 * self.lexicon_size, "vocab too small");

        // Power-law user sizes with a 1-sample floor.
        let weights: Vec<f64> = (0..users)
            .map(|k| ((k + 1) as f64).powf(-self.quantity_gamma))
            .collect();
        let wsum: f64 = weights.iter().sum();
        let spare = total - users;
        let mut sizes: Vec<usize> = weights
            .iter()
            .map(|w| (w / wsum * spare as f64).floor() as usize + 1)
            .collect();
        let mut assigned: usize = sizes.iter().sum();
        let mut k = 0;
        while assigned < total {
            sizes[k % users] += 1;
            assigned += 1;
            k += 1;
        }
        while assigned > total {
            let i = sizes.iter().position(|&s| s > 1).expect("shrinkable user");
            sizes[i] -= 1;
            assigned -= 1;
        }

        let mut tokens: Vec<Vec<u32>> = Vec::with_capacity(total);
        let mut labels = Vec::with_capacity(total);
        let mut user_ids = Vec::with_capacity(total);

        for (user, &count) in sizes.iter().enumerate() {
            // User style: window offsets and sentiment base rate.
            let pos = self.positive_range();
            let neg = self.negative_range();
            let fil = self.filler_range();
            let w = self.user_window as u32;
            let pos_off = rng.gen_range(0..(pos.end - pos.start).saturating_sub(w).max(1));
            let neg_off = rng.gen_range(0..(neg.end - neg.start).saturating_sub(w).max(1));
            let fil_off = rng.gen_range(0..(fil.end - fil.start).saturating_sub(w).max(1));
            let base_rate: f64 = rng.gen_range(0.25..0.75);

            for _ in 0..count {
                let label = usize::from(rng.gen_bool(base_rate));
                let lex = if label == 1 {
                    (pos.start + pos_off, w.min(pos.end - pos.start - pos_off))
                } else {
                    (neg.start + neg_off, w.min(neg.end - neg.start - neg_off))
                };
                let filler = (fil.start + fil_off, w.min(fil.end - fil.start - fil_off));
                let seq: Vec<u32> = (0..self.seq_len)
                    .map(|_| {
                        let (lo, width) = if rng.gen_bool(self.sentiment_rate) {
                            lex
                        } else {
                            filler
                        };
                        lo + rng.gen_range(0..width.max(1))
                    })
                    .collect();
                tokens.push(seq);
                labels.push(label);
                user_ids.push(user);
            }
        }
        (Dataset::new(Examples::Tokens(tokens), labels, 2), user_ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_fixed_length_sequences() {
        let mut rng = StdRng::seed_from_u64(0);
        let spec = SynthTextSpec::sent140_like();
        let (ds, users) = spec.generate_users(10, 200, &mut rng);
        assert_eq!(ds.len(), 200);
        assert_eq!(users.len(), 200);
        match ds.examples() {
            Examples::Tokens(seqs) => {
                assert!(seqs.iter().all(|s| s.len() == 16));
                assert!(seqs.iter().flatten().all(|&t| (t as usize) < spec.vocab));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn labels_are_binary_and_both_present() {
        let mut rng = StdRng::seed_from_u64(1);
        let (ds, _) = SynthTextSpec::sent140_like().generate_users(10, 500, &mut rng);
        let counts = ds.class_counts();
        assert_eq!(counts.len(), 2);
        assert!(counts.iter().all(|&c| c > 100), "{counts:?}");
    }

    #[test]
    fn sentiment_tokens_correlate_with_label() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = SynthTextSpec::sent140_like();
        let (ds, _) = spec.generate_users(5, 400, &mut rng);
        let seqs = match ds.examples() {
            Examples::Tokens(s) => s,
            _ => unreachable!(),
        };
        // Count positive-lexicon tokens per class.
        let pos = spec.positive_range();
        let mut pos_in_pos = 0usize;
        let mut pos_in_neg = 0usize;
        let mut n_pos = 0usize;
        let mut n_neg = 0usize;
        for (seq, &y) in seqs.iter().zip(ds.labels()) {
            let c = seq.iter().filter(|&&t| pos.contains(&t)).count();
            if y == 1 {
                pos_in_pos += c;
                n_pos += 1;
            } else {
                pos_in_neg += c;
                n_neg += 1;
            }
        }
        let rate_pos = pos_in_pos as f64 / n_pos as f64;
        let rate_neg = pos_in_neg as f64 / n_neg as f64;
        assert!(
            rate_pos > rate_neg + 2.0,
            "positive-token rates: {rate_pos} vs {rate_neg}"
        );
    }

    #[test]
    fn user_partition_is_valid_with_quantity_skew() {
        let mut rng = StdRng::seed_from_u64(3);
        let (_, users) = SynthTextSpec::sent140_like().generate_users(30, 900, &mut rng);
        let parts = partition::by_user(&users);
        assert_eq!(parts.len(), 30);
        assert!(partition::is_valid_partition(&parts, 900));
        let max = parts.iter().map(|p| p.len()).max().unwrap();
        let min = parts.iter().map(|p| p.len()).min().unwrap();
        assert!(max > min, "expected quantity skew");
    }

    #[test]
    fn users_have_distinct_token_distributions() {
        let mut rng = StdRng::seed_from_u64(4);
        let spec = SynthTextSpec::sent140_like();
        let (ds, users) = spec.generate_users(8, 800, &mut rng);
        let seqs = match ds.examples() {
            Examples::Tokens(s) => s,
            _ => unreachable!(),
        };
        // Mean filler token id differs across users (window feature skew).
        let fil = spec.filler_range();
        let mut means = Vec::new();
        for u in 0..8 {
            let mut sum = 0f64;
            let mut cnt = 0usize;
            for (seq, &uid) in seqs.iter().zip(users.iter()) {
                if uid != u {
                    continue;
                }
                for &t in seq.iter().filter(|&&t| fil.contains(&t)) {
                    sum += t as f64;
                    cnt += 1;
                }
            }
            if cnt > 0 {
                means.push(sum / cnt as f64);
            }
        }
        let spread = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - means.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 3.0, "user windows not distinct: spread {spread}");
    }
}
