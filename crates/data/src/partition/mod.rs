//! Partitioning schemes turning a pooled dataset into per-client index sets.
//!
//! Every function returns `Vec<Vec<usize>>` — one index list per client.
//! All schemes conserve samples: every index appears in exactly one client
//! (property-tested in `tests/`).

mod dirichlet;
mod iid;
mod natural;
mod quantity;
mod similarity;

pub use dirichlet::dirichlet;
pub use iid::iid;
pub use natural::by_user;
pub use quantity::quantity_skew;
pub use similarity::similarity;

/// Validates a partition: each index in `0..n` appears exactly once.
///
/// Used in debug assertions and tests.
pub fn is_valid_partition(parts: &[Vec<usize>], n: usize) -> bool {
    let mut seen = vec![false; n];
    let mut count = 0usize;
    for part in parts {
        for &i in part {
            if i >= n || seen[i] {
                return false;
            }
            seen[i] = true;
            count += 1;
        }
    }
    count == n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_partition_check() {
        assert!(is_valid_partition(&[vec![0, 2], vec![1]], 3));
        assert!(!is_valid_partition(&[vec![0], vec![0]], 2)); // duplicate
        assert!(!is_valid_partition(&[vec![0]], 2)); // missing
        assert!(!is_valid_partition(&[vec![5]], 2)); // out of range
    }
}
