//! Natural partition: group samples by their generating user.
//!
//! This is how Sent140 and FEMNIST are federated in the paper — each client
//! is one user, which yields natural feature- and quantity-skew.

/// Groups sample indices by `user_ids[i]`. Clients are ordered by user id;
/// users with no samples produce no client.
pub fn by_user(user_ids: &[usize]) -> Vec<Vec<usize>> {
    let max_user = match user_ids.iter().max() {
        Some(&m) => m,
        None => return Vec::new(),
    };
    let mut parts = vec![Vec::new(); max_user + 1];
    for (i, &u) in user_ids.iter().enumerate() {
        parts[u].push(i);
    }
    parts.retain(|p| !p.is_empty());
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::is_valid_partition;

    #[test]
    fn groups_by_user() {
        let parts = by_user(&[0, 1, 0, 2, 1]);
        assert_eq!(parts, vec![vec![0, 2], vec![1, 4], vec![3]]);
        assert!(is_valid_partition(&parts, 5));
    }

    #[test]
    fn skips_empty_users() {
        let parts = by_user(&[0, 3, 3]);
        assert_eq!(parts.len(), 2);
        assert!(is_valid_partition(&parts, 3));
    }

    #[test]
    fn empty_input_gives_no_clients() {
        assert!(by_user(&[]).is_empty());
    }
}
