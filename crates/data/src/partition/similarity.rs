//! The paper's similarity-`s%` label-skew partitioner.
//!
//! Following the SCAFFOLD/paper protocol (Sec. VI-A): first allocate `s%` of
//! the data IID to the clients; sort the remaining `(100 − s)%` by label and
//! deal contiguous shards evenly. `s = 0` is "totally non-IID" (each client
//! sees a narrow label slice), `s = 1` is IID.

use rand::seq::SliceRandom;
use rand::Rng;

/// Partitions `labels.len()` samples over `n_clients` with IID fraction `s`.
///
/// # Panics
/// Panics if `s ∉ [0, 1]`, `n_clients == 0`, or there are fewer samples than
/// clients.
pub fn similarity<R: Rng>(
    labels: &[usize],
    n_clients: usize,
    s: f64,
    rng: &mut R,
) -> Vec<Vec<usize>> {
    assert!((0.0..=1.0).contains(&s), "similarity s must be in [0, 1]");
    assert!(n_clients > 0, "need at least one client");
    let n = labels.len();
    assert!(n >= n_clients, "fewer samples than clients");

    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);

    let n_iid = ((n as f64) * s).round() as usize;
    let (iid_part, skew_part) = order.split_at(n_iid);

    let mut parts: Vec<Vec<usize>> = vec![Vec::new(); n_clients];

    // IID fraction: deal round-robin.
    for (slot, &idx) in iid_part.iter().enumerate() {
        parts[slot % n_clients].push(idx);
    }

    // Remaining fraction: sort by label, deal contiguous shards.
    let mut sorted: Vec<usize> = skew_part.to_vec();
    sorted.sort_by_key(|&i| labels[i]);
    let m = sorted.len();
    for (k, part) in parts.iter_mut().enumerate() {
        let lo = k * m / n_clients;
        let hi = (k + 1) * m / n_clients;
        part.extend_from_slice(&sorted[lo..hi]);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::is_valid_partition;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn labels(n: usize, classes: usize) -> Vec<usize> {
        (0..n).map(|i| i % classes).collect()
    }

    #[test]
    fn conserves_samples() {
        let mut rng = StdRng::seed_from_u64(0);
        for s in [0.0, 0.1, 0.5, 1.0] {
            let parts = similarity(&labels(100, 10), 7, s, &mut rng);
            assert!(is_valid_partition(&parts, 100), "s = {s}");
        }
    }

    #[test]
    fn s_zero_gives_narrow_label_slices() {
        let mut rng = StdRng::seed_from_u64(1);
        // 1000 samples, 10 classes, 10 clients → each client should see at
        // most ~2 distinct labels (contiguous shard of the sorted order).
        let parts = similarity(&labels(1000, 10), 10, 0.0, &mut rng);
        let lab = labels(1000, 10);
        for part in &parts {
            let mut classes: Vec<usize> = part.iter().map(|&i| lab[i]).collect();
            classes.sort_unstable();
            classes.dedup();
            assert!(classes.len() <= 2, "client saw {} classes", classes.len());
        }
    }

    #[test]
    fn s_one_gives_balanced_label_mix() {
        let mut rng = StdRng::seed_from_u64(2);
        let lab = labels(1000, 10);
        let parts = similarity(&lab, 10, 1.0, &mut rng);
        for part in &parts {
            let mut counts = vec![0usize; 10];
            for &i in part {
                counts[lab[i]] += 1;
            }
            // Each class should appear roughly 10 times per client
            // (hypergeometric spread allows a wide band).
            assert!(counts.iter().all(|&c| (2..=25).contains(&c)), "{counts:?}");
        }
    }

    #[test]
    fn intermediate_s_mixes_proportionally() {
        let mut rng = StdRng::seed_from_u64(3);
        let lab = labels(1000, 10);
        let parts = similarity(&lab, 10, 0.1, &mut rng);
        // Every client should still hold some samples from outside its shard.
        for part in &parts {
            let mut classes: Vec<usize> = part.iter().map(|&i| lab[i]).collect();
            classes.sort_unstable();
            classes.dedup();
            assert!(classes.len() >= 3, "client only saw {classes:?}");
        }
    }

    #[test]
    fn sizes_are_near_equal() {
        let mut rng = StdRng::seed_from_u64(4);
        let parts = similarity(&labels(103, 5), 10, 0.3, &mut rng);
        for part in &parts {
            assert!((9..=12).contains(&part.len()), "size {}", part.len());
        }
    }

    #[test]
    #[should_panic(expected = "similarity s")]
    fn rejects_bad_s() {
        let mut rng = StdRng::seed_from_u64(5);
        similarity(&labels(10, 2), 2, 1.5, &mut rng);
    }
}
