//! Quantity-skew partition: client sizes follow a power law, as observed in
//! naturally federated corpora (Sent140/FEMNIST users hold wildly different
//! sample counts).

use rand::seq::SliceRandom;
use rand::Rng;

/// Partitions `n_samples` over `n_clients` with sizes ∝ `(k+1)^(-gamma)`
/// (client order is shuffled so the skew is not correlated with client id).
/// Every client receives at least one sample.
pub fn quantity_skew<R: Rng>(
    n_samples: usize,
    n_clients: usize,
    gamma: f64,
    rng: &mut R,
) -> Vec<Vec<usize>> {
    assert!(n_clients > 0);
    assert!(n_samples >= n_clients, "fewer samples than clients");
    assert!(gamma >= 0.0);

    // Power-law weights, shuffled.
    let mut weights: Vec<f64> = (0..n_clients)
        .map(|k| ((k + 1) as f64).powf(-gamma))
        .collect();
    weights.shuffle(rng);
    let total: f64 = weights.iter().sum();

    // Target sizes: floor allocation + largest-remainder for the slack,
    // with a 1-sample floor per client.
    let spare = n_samples - n_clients;
    let mut sizes: Vec<usize> = weights
        .iter()
        .map(|w| (w / total * spare as f64).floor() as usize)
        .collect();
    let assigned: usize = sizes.iter().sum();
    let mut rema: Vec<(usize, f64)> = weights
        .iter()
        .enumerate()
        .map(|(k, w)| (k, w / total * spare as f64 - sizes[k] as f64))
        .collect();
    rema.sort_by(|a, b| b.1.total_cmp(&a.1));
    for &(k, _) in rema.iter().take(spare - assigned) {
        sizes[k] += 1;
    }
    for s in &mut sizes {
        *s += 1; // the floor
    }

    let mut order: Vec<usize> = (0..n_samples).collect();
    order.shuffle(rng);
    let mut parts = Vec::with_capacity(n_clients);
    let mut lo = 0usize;
    for s in sizes {
        parts.push(order[lo..lo + s].to_vec());
        lo += s;
    }
    debug_assert_eq!(lo, n_samples);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::is_valid_partition;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conserves_samples() {
        let mut rng = StdRng::seed_from_u64(0);
        for gamma in [0.0, 0.8, 2.0] {
            let parts = quantity_skew(257, 13, gamma, &mut rng);
            assert!(is_valid_partition(&parts, 257), "gamma {gamma}");
        }
    }

    #[test]
    fn every_client_nonempty() {
        let mut rng = StdRng::seed_from_u64(1);
        let parts = quantity_skew(100, 50, 3.0, &mut rng);
        assert!(parts.iter().all(|p| !p.is_empty()));
    }

    #[test]
    fn gamma_zero_is_balanced() {
        let mut rng = StdRng::seed_from_u64(2);
        let parts = quantity_skew(100, 10, 0.0, &mut rng);
        for p in &parts {
            assert!((9..=11).contains(&p.len()), "size {}", p.len());
        }
    }

    #[test]
    fn large_gamma_is_skewed() {
        let mut rng = StdRng::seed_from_u64(3);
        let parts = quantity_skew(1000, 10, 2.0, &mut rng);
        let max = parts.iter().map(|p| p.len()).max().unwrap();
        let min = parts.iter().map(|p| p.len()).min().unwrap();
        assert!(max > 10 * min, "max {max} min {min}");
    }
}
