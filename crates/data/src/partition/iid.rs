//! Uniform IID partition.

use rand::seq::SliceRandom;
use rand::Rng;

/// Shuffles and deals samples round-robin to `n_clients`.
pub fn iid<R: Rng>(n_samples: usize, n_clients: usize, rng: &mut R) -> Vec<Vec<usize>> {
    assert!(n_clients > 0, "need at least one client");
    assert!(n_samples >= n_clients, "fewer samples than clients");
    let mut order: Vec<usize> = (0..n_samples).collect();
    order.shuffle(rng);
    let mut parts = vec![Vec::with_capacity(n_samples / n_clients + 1); n_clients];
    for (slot, idx) in order.into_iter().enumerate() {
        parts[slot % n_clients].push(idx);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::is_valid_partition;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conserves_samples() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(is_valid_partition(&iid(101, 7, &mut rng), 101));
    }

    #[test]
    fn sizes_differ_by_at_most_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let parts = iid(100, 7, &mut rng);
        let (min, max) = parts.iter().fold((usize::MAX, 0), |(lo, hi), p| {
            (lo.min(p.len()), hi.max(p.len()))
        });
        assert!(max - min <= 1);
    }

    #[test]
    fn different_seeds_differ() {
        let a = iid(50, 5, &mut StdRng::seed_from_u64(2));
        let b = iid(50, 5, &mut StdRng::seed_from_u64(3));
        assert_ne!(a, b);
    }
}
