//! Label-Dirichlet partition (Hsu et al. style), used by ablation studies as
//! an alternative non-IID model to the paper's similarity scheme.

use rand::Rng;

/// Samples from `Gamma(alpha, 1)` via Marsaglia–Tsang (with the boosting
/// trick for `alpha < 1`).
fn gamma_sample<R: Rng>(alpha: f64, rng: &mut R) -> f64 {
    if alpha < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) · U^(1/a)
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        return gamma_sample(alpha + 1.0, rng) * u.powf(1.0 / alpha);
    }
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Samples a probability vector from `Dirichlet(alpha · 1)`.
pub fn dirichlet_vector<R: Rng>(k: usize, alpha: f64, rng: &mut R) -> Vec<f64> {
    assert!(k > 0 && alpha > 0.0);
    let mut v: Vec<f64> = (0..k).map(|_| gamma_sample(alpha, rng)).collect();
    let s: f64 = v.iter().sum();
    if s <= 0.0 {
        return vec![1.0 / k as f64; k];
    }
    for x in &mut v {
        *x /= s;
    }
    v
}

/// Label-Dirichlet partition: for each class, split its samples over clients
/// according to a `Dirichlet(alpha)` draw. Small `alpha` ⇒ extreme skew.
pub fn dirichlet<R: Rng>(
    labels: &[usize],
    n_clients: usize,
    alpha: f64,
    rng: &mut R,
) -> Vec<Vec<usize>> {
    assert!(n_clients > 0);
    assert!(alpha > 0.0, "alpha must be positive");
    let classes = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut parts = vec![Vec::new(); n_clients];
    for c in 0..classes {
        let idx: Vec<usize> = (0..labels.len()).filter(|&i| labels[i] == c).collect();
        if idx.is_empty() {
            continue;
        }
        let probs = dirichlet_vector(n_clients, alpha, rng);
        // Convert to cumulative cut points over this class's samples.
        let mut cum = 0.0f64;
        let mut cuts = Vec::with_capacity(n_clients);
        for p in &probs {
            cum += p;
            cuts.push((cum * idx.len() as f64).round() as usize);
        }
        *cuts.last_mut().unwrap() = idx.len();
        let mut lo = 0usize;
        for (k, &hi) in cuts.iter().enumerate() {
            let hi = hi.max(lo);
            parts[k].extend_from_slice(&idx[lo..hi]);
            lo = hi;
        }
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::is_valid_partition;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dirichlet_vector_is_a_distribution() {
        let mut rng = StdRng::seed_from_u64(0);
        for alpha in [0.1, 1.0, 10.0] {
            let v = dirichlet_vector(8, alpha, &mut rng);
            assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(v.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn small_alpha_concentrates_mass() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut max_sum = 0.0;
        for _ in 0..50 {
            let v = dirichlet_vector(10, 0.05, &mut rng);
            max_sum += v.iter().cloned().fold(0.0, f64::max);
        }
        assert!(max_sum / 50.0 > 0.6, "avg max {}", max_sum / 50.0);
    }

    #[test]
    fn large_alpha_is_nearly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut max_sum = 0.0;
        for _ in 0..50 {
            let v = dirichlet_vector(10, 100.0, &mut rng);
            max_sum += v.iter().cloned().fold(0.0, f64::max);
        }
        assert!(max_sum / 50.0 < 0.2, "avg max {}", max_sum / 50.0);
    }

    #[test]
    fn partition_conserves_samples() {
        let mut rng = StdRng::seed_from_u64(3);
        let labels: Vec<usize> = (0..500).map(|i| i % 10).collect();
        for alpha in [0.1, 1.0, 10.0] {
            let parts = dirichlet(&labels, 8, alpha, &mut rng);
            assert!(is_valid_partition(&parts, 500), "alpha {alpha}");
        }
    }

    #[test]
    fn small_alpha_skews_labels() {
        let mut rng = StdRng::seed_from_u64(4);
        let labels: Vec<usize> = (0..2000).map(|i| i % 10).collect();
        let parts = dirichlet(&labels, 10, 0.05, &mut rng);
        // At least one client should be dominated by few classes.
        let mut any_skewed = false;
        for part in parts.iter().filter(|p| p.len() >= 20) {
            let mut counts = [0usize; 10];
            for &i in part {
                counts[labels[i]] += 1;
            }
            let max = *counts.iter().max().unwrap();
            if (max as f64) / (part.len() as f64) > 0.5 {
                any_skewed = true;
            }
        }
        assert!(any_skewed);
    }
}
