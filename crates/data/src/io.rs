//! IDX file format (the MNIST/EMNIST container): reader and writer.
//!
//! The synthetic benchmarks stand in for the real corpora, but a downstream
//! user with `train-images-idx3-ubyte` on disk can load it directly:
//!
//! ```no_run
//! use rfl_data::io::load_idx_images;
//! let ds = load_idx_images("train-images-idx3-ubyte", "train-labels-idx1-ubyte", 10).unwrap();
//! ```
//!
//! Format: big-endian magic `0x0000_08dd` (dd = #dims), one u32 per
//! dimension, then raw u8 payload. Pixels are normalized to `[0, 1]`.

use crate::dataset::{Dataset, Examples};
use rfl_tensor::Tensor;
use std::io::Read;
use std::path::Path;

/// Errors from IDX parsing.
#[derive(Debug)]
pub enum IdxError {
    Io(std::io::Error),
    BadMagic(u32),
    WrongRank { expected: u8, got: u8 },
    Truncated,
    LabelOutOfRange { label: u8, classes: usize },
    CountMismatch { images: usize, labels: usize },
}

impl std::fmt::Display for IdxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IdxError::Io(e) => write!(f, "io error: {e}"),
            IdxError::BadMagic(m) => write!(f, "bad IDX magic 0x{m:08x}"),
            IdxError::WrongRank { expected, got } => {
                write!(f, "expected rank {expected}, got {got}")
            }
            IdxError::Truncated => write!(f, "truncated IDX payload"),
            IdxError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            IdxError::CountMismatch { images, labels } => {
                write!(f, "{images} images but {labels} labels")
            }
        }
    }
}

impl std::error::Error for IdxError {}

impl From<std::io::Error> for IdxError {
    fn from(e: std::io::Error) -> Self {
        IdxError::Io(e)
    }
}

fn read_u32_be(r: &mut impl Read) -> Result<u32, IdxError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b).map_err(|_| IdxError::Truncated)?;
    Ok(u32::from_be_bytes(b))
}

/// Parses an IDX byte stream; returns `(dims, payload)`.
pub fn parse_idx(mut r: impl Read) -> Result<(Vec<usize>, Vec<u8>), IdxError> {
    let magic = read_u32_be(&mut r)?;
    if magic >> 8 != 0x08 {
        // type byte must be 0x08 (unsigned byte data)
        return Err(IdxError::BadMagic(magic));
    }
    let rank = (magic & 0xFF) as u8;
    let mut dims = Vec::with_capacity(rank as usize);
    for _ in 0..rank {
        dims.push(read_u32_be(&mut r)? as usize);
    }
    let total: usize = dims.iter().product();
    let mut payload = vec![0u8; total];
    r.read_exact(&mut payload)
        .map_err(|_| IdxError::Truncated)?;
    Ok((dims, payload))
}

/// Serializes dims + payload into IDX bytes.
pub fn write_idx(dims: &[usize], payload: &[u8]) -> Vec<u8> {
    assert_eq!(dims.iter().product::<usize>(), payload.len());
    assert!(dims.len() <= 255);
    let mut out = Vec::with_capacity(4 + dims.len() * 4 + payload.len());
    out.extend_from_slice(&(0x0800u32 | dims.len() as u32).to_be_bytes());
    for &d in dims {
        out.extend_from_slice(&(d as u32).to_be_bytes());
    }
    out.extend_from_slice(payload);
    out
}

/// Builds an image [`Dataset`] from in-memory IDX images (rank 3:
/// `[n, h, w]`) and labels (rank 1: `[n]`).
pub fn dataset_from_idx(
    images: (Vec<usize>, Vec<u8>),
    labels: (Vec<usize>, Vec<u8>),
    num_classes: usize,
) -> Result<Dataset, IdxError> {
    let (idims, ipix) = images;
    let (ldims, lab) = labels;
    if idims.len() != 3 {
        return Err(IdxError::WrongRank {
            expected: 3,
            got: idims.len() as u8,
        });
    }
    if ldims.len() != 1 {
        return Err(IdxError::WrongRank {
            expected: 1,
            got: ldims.len() as u8,
        });
    }
    let (n, h, w) = (idims[0], idims[1], idims[2]);
    if n != ldims[0] {
        return Err(IdxError::CountMismatch {
            images: n,
            labels: ldims[0],
        });
    }
    let mut y = Vec::with_capacity(n);
    for &l in &lab {
        if (l as usize) >= num_classes {
            return Err(IdxError::LabelOutOfRange {
                label: l,
                classes: num_classes,
            });
        }
        y.push(l as usize);
    }
    let x: Vec<f32> = ipix.iter().map(|&p| p as f32 / 255.0).collect();
    Ok(Dataset::new(
        Examples::Images(Tensor::from_vec(x, &[n, 1, h, w])),
        y,
        num_classes,
    ))
}

/// Loads an image dataset from IDX files on disk.
pub fn load_idx_images(
    images_path: impl AsRef<Path>,
    labels_path: impl AsRef<Path>,
    num_classes: usize,
) -> Result<Dataset, IdxError> {
    let img = parse_idx(std::fs::File::open(images_path)?)?;
    let lab = parse_idx(std::fs::File::open(labels_path)?)?;
    dataset_from_idx(img, lab, num_classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_the_writer() {
        let dims = vec![2usize, 3, 3];
        let payload: Vec<u8> = (0..18).collect();
        let bytes = write_idx(&dims, &payload);
        let (d2, p2) = parse_idx(&bytes[..]).unwrap();
        assert_eq!(d2, dims);
        assert_eq!(p2, payload);
    }

    #[test]
    fn builds_a_dataset() {
        let images = write_idx(&[2, 2, 2], &[0, 255, 128, 0, 10, 20, 30, 40]);
        let labels = write_idx(&[2], &[1, 0]);
        let img = parse_idx(&images[..]).unwrap();
        let lab = parse_idx(&labels[..]).unwrap();
        let ds = dataset_from_idx(img, lab, 2).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.labels(), &[1, 0]);
        match ds.examples() {
            Examples::Images(t) => {
                assert_eq!(t.dims(), &[2, 1, 2, 2]);
                assert!((t.data()[1] - 1.0).abs() < 1e-6); // 255 → 1.0
                assert!((t.data()[2] - 128.0 / 255.0).abs() < 1e-6);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let bytes = [0xFFu8, 0, 0, 3];
        assert!(matches!(parse_idx(&bytes[..]), Err(IdxError::BadMagic(_))));
    }

    #[test]
    fn rejects_truncated_payload() {
        let mut bytes = write_idx(&[2, 2], &[1, 2, 3, 4]);
        bytes.truncate(bytes.len() - 2);
        assert!(matches!(parse_idx(&bytes[..]), Err(IdxError::Truncated)));
    }

    #[test]
    fn rejects_label_out_of_range() {
        let img = parse_idx(&write_idx(&[1, 1, 1], &[0])[..]).unwrap();
        let lab = parse_idx(&write_idx(&[1], &[7])[..]).unwrap();
        assert!(matches!(
            dataset_from_idx(img, lab, 3),
            Err(IdxError::LabelOutOfRange { label: 7, .. })
        ));
    }

    #[test]
    fn rejects_count_mismatch() {
        let img = parse_idx(&write_idx(&[2, 1, 1], &[0, 0])[..]).unwrap();
        let lab = parse_idx(&write_idx(&[3], &[0, 1, 0])[..]).unwrap();
        assert!(matches!(
            dataset_from_idx(img, lab, 2),
            Err(IdxError::CountMismatch { .. })
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("rfl_idx_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ipath = dir.join("imgs.idx");
        let lpath = dir.join("labels.idx");
        std::fs::write(&ipath, write_idx(&[3, 2, 2], &[10; 12])).unwrap();
        std::fs::write(&lpath, write_idx(&[3], &[0, 1, 2])).unwrap();
        let ds = load_idx_images(&ipath, &lpath, 3).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.class_counts(), vec![1, 1, 1]);
    }
}
