//! Statistics quantifying how non-IID a federated partition is.

/// Per-client label distributions: `[clients][classes]`, each row summing
/// to 1 (empty clients yield all-zero rows).
pub fn label_histograms(parts: &[Vec<usize>], labels: &[usize], classes: usize) -> Vec<Vec<f64>> {
    parts
        .iter()
        .map(|part| {
            let mut h = vec![0.0f64; classes];
            for &i in part {
                h[labels[i]] += 1.0;
            }
            let n = part.len() as f64;
            if n > 0.0 {
                for v in &mut h {
                    *v /= n;
                }
            }
            h
        })
        .collect()
}

/// Average total-variation distance between each client's label distribution
/// and the global one. 0 = perfectly IID labels; approaches
/// `1 − 1/classes` under total label skew.
pub fn label_skewness(parts: &[Vec<usize>], labels: &[usize], classes: usize) -> f64 {
    assert!(!parts.is_empty());
    let hists = label_histograms(parts, labels, classes);
    let mut global = vec![0.0f64; classes];
    for &y in labels {
        global[y] += 1.0;
    }
    let n = labels.len() as f64;
    for v in &mut global {
        *v /= n;
    }
    let mut total = 0.0;
    for h in &hists {
        let tv: f64 = h
            .iter()
            .zip(&global)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / 2.0;
        total += tv;
    }
    total / hists.len() as f64
}

/// Coefficient of variation of client sizes (quantity-skew measure).
pub fn size_cv(parts: &[Vec<usize>]) -> f64 {
    assert!(!parts.is_empty());
    let sizes: Vec<f64> = parts.iter().map(|p| p.len() as f64).collect();
    let mean = sizes.iter().sum::<f64>() / sizes.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let var = sizes.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / sizes.len() as f64;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn labels(n: usize, classes: usize) -> Vec<usize> {
        (0..n).map(|i| i % classes).collect()
    }

    #[test]
    fn histograms_are_distributions() {
        let lab = labels(100, 5);
        let mut rng = StdRng::seed_from_u64(0);
        let parts = partition::iid(100, 4, &mut rng);
        for h in label_histograms(&parts, &lab, 5) {
            assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn skewness_orders_partitions_correctly() {
        let lab = labels(1000, 10);
        let mut rng = StdRng::seed_from_u64(1);
        let iid = partition::similarity(&lab, 10, 1.0, &mut rng);
        let mid = partition::similarity(&lab, 10, 0.1, &mut rng);
        let skew = partition::similarity(&lab, 10, 0.0, &mut rng);
        let (a, b, c) = (
            label_skewness(&iid, &lab, 10),
            label_skewness(&mid, &lab, 10),
            label_skewness(&skew, &lab, 10),
        );
        assert!(a < b && b < c, "expected {a} < {b} < {c}");
        assert!(a < 0.15, "IID skewness {a}");
        assert!(c > 0.7, "non-IID skewness {c}");
    }

    #[test]
    fn size_cv_zero_for_equal_sizes() {
        assert!(size_cv(&[vec![0, 1], vec![2, 3]]) < 1e-12);
        assert!(size_cv(&[vec![0], vec![1, 2, 3, 4]]) > 0.5);
    }
}
