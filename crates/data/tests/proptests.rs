//! Property-based tests of the partitioners: sample conservation, size
//! bounds, and skew ordering across random label vectors and parameters.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfl_data::{partition, stats};

fn labels_strategy() -> impl Strategy<Value = Vec<usize>> {
    (20usize..200, 2usize..10)
        .prop_flat_map(|(n, classes)| prop::collection::vec(0usize..classes, n))
}

proptest! {
    /// Similarity partitions conserve samples for every s.
    #[test]
    fn similarity_conserves_samples(
        labels in labels_strategy(), s in 0.0f64..1.0, seed in 0u64..50
    ) {
        let n_clients = 4usize;
        prop_assume!(labels.len() >= n_clients);
        let mut rng = StdRng::seed_from_u64(seed);
        let parts = partition::similarity(&labels, n_clients, s, &mut rng);
        prop_assert!(partition::is_valid_partition(&parts, labels.len()));
        prop_assert_eq!(parts.len(), n_clients);
    }

    /// Similarity partition sizes never differ by more than the shard
    /// rounding slack.
    #[test]
    fn similarity_sizes_balanced(labels in labels_strategy(), seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let parts = partition::similarity(&labels, 5, 0.3, &mut rng);
        let min = parts.iter().map(|p| p.len()).min().unwrap();
        let max = parts.iter().map(|p| p.len()).max().unwrap();
        prop_assert!(max - min <= 3, "sizes {min}..{max}");
    }

    /// IID partitions conserve samples and balance sizes to within one.
    #[test]
    fn iid_invariants(n in 10usize..300, k in 2usize..8, seed in 0u64..50) {
        prop_assume!(n >= k);
        let mut rng = StdRng::seed_from_u64(seed);
        let parts = partition::iid(n, k, &mut rng);
        prop_assert!(partition::is_valid_partition(&parts, n));
        let min = parts.iter().map(|p| p.len()).min().unwrap();
        let max = parts.iter().map(|p| p.len()).max().unwrap();
        prop_assert!(max - min <= 1);
    }

    /// Dirichlet partitions conserve samples for any α.
    #[test]
    fn dirichlet_conserves_samples(
        labels in labels_strategy(), alpha in 0.05f64..20.0, seed in 0u64..50
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let parts = partition::dirichlet(&labels, 5, alpha, &mut rng);
        prop_assert!(partition::is_valid_partition(&parts, labels.len()));
    }

    /// Quantity skew conserves samples and never creates empty clients.
    #[test]
    fn quantity_skew_invariants(
        n in 20usize..300, gamma in 0.0f64..3.0, seed in 0u64..50
    ) {
        let k = 7usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let parts = partition::quantity_skew(n, k, gamma, &mut rng);
        prop_assert!(partition::is_valid_partition(&parts, n));
        prop_assert!(parts.iter().all(|p| !p.is_empty()));
    }

    /// by_user inverts a user-id assignment exactly.
    #[test]
    fn by_user_inverts_assignment(users in prop::collection::vec(0usize..6, 1..120)) {
        let parts = partition::by_user(&users);
        prop_assert!(partition::is_valid_partition(&parts, users.len()));
        for part in &parts {
            // All samples in one part share one user id.
            let u = users[part[0]];
            prop_assert!(part.iter().all(|&i| users[i] == u));
        }
    }

    /// Lower similarity never yields (meaningfully) lower label skewness.
    #[test]
    fn similarity_orders_skewness(seed in 0u64..30) {
        let labels: Vec<usize> = (0..400).map(|i| i % 8).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let skew_at = |s: f64, rng: &mut StdRng| {
            let parts = partition::similarity(&labels, 8, s, rng);
            stats::label_skewness(&parts, &labels, 8)
        };
        let high = skew_at(0.0, &mut rng);
        let low = skew_at(1.0, &mut rng);
        prop_assert!(high > low + 0.2, "skew(s=0)={high} vs skew(s=1)={low}");
    }
}
