#!/usr/bin/env bash
# Real multi-process federation smoke: one rfl-server plus four rfl-client
# processes over loopback TCP *and* over a Unix-domain socket must each
# reproduce the pinned in-process round-loop loss bit-exactly
# (--expect-loss makes the server's exit code the assertion).
#
# Usage: scripts/distributed-smoke.sh [--trace-dir DIR]
#
# --trace-dir keeps the per-leg JSONL round traces in DIR (CI uploads them
# as an artifact when the job fails); by default they land in a temp dir.
# A watchdog hard-kills everything after $TIMEOUT_SECS so a wedged run
# fails the job instead of hanging it.
set -euo pipefail
cd "$(dirname "$0")/.."

EXPECT_LOSS=1.604142189
# 64-client cohort over the same recipe (`canonical::data_for(SEED, 64)`);
# pin provenance in EXPERIMENTS.md. Exercises the reactor's fan-out path —
# 64 concurrent connections multiplexed on a fixed shard budget.
EXPECT_LOSS_64=2.115149736
NUM_CLIENTS=4
TIMEOUT_SECS="${RFL_SMOKE_TIMEOUT_SECS:-180}"

TRACE_DIR=""
if [ "${1:-}" = "--trace-dir" ]; then
    TRACE_DIR="${2:?--trace-dir needs a directory}"
    mkdir -p "$TRACE_DIR"
fi

echo "== building rfl-server / rfl-client (release)"
cargo build --release -p rfl-fed --bins

run_leg() {
    # LEG_CLIENTS overrides the cohort size for one leg (the 64-client
    # fan-out leg); every other leg runs the pinned 4-client cohort.
    local name="$1" listen="$2" clients="${LEG_CLIENTS:-$NUM_CLIENTS}"
    shift 2
    local dir ready trace endpoint server_pid watchdog_pid rc
    dir=$(mktemp -d)
    ready="$dir/endpoint"
    trace="${TRACE_DIR:-$dir}/distributed-smoke-$name.jsonl"
    echo "== distributed smoke ($name): $listen"

    # Extra args select the leg's assertion: --expect-loss pins the dense
    # run to the canonical loss; --compress + --expect-oracle pins a
    # compressed run bit-exactly against the in-process oracle.
    ./target/release/rfl-server \
        --listen "$listen" --ready-file "$ready" --clients "$clients" \
        --trace "$trace" "$@" &
    server_pid=$!

    # Watchdog: if the leg wedges, kill the whole process group hard.
    (
        sleep "$TIMEOUT_SECS"
        echo "ERROR: distributed smoke ($name) timed out after ${TIMEOUT_SECS}s" >&2
        kill -9 "$server_pid" 2>/dev/null || true
        pkill -9 -f "target/release/rfl-client" 2>/dev/null || true
    ) &
    watchdog_pid=$!

    # The server publishes its actual endpoint (resolving port 0) once bound.
    for _ in $(seq 1 200); do
        [ -f "$ready" ] && break
        if ! kill -0 "$server_pid" 2>/dev/null; then
            echo "ERROR: server exited before binding" >&2
            kill "$watchdog_pid" 2>/dev/null || true
            return 1
        fi
        sleep 0.1
    done
    if [ ! -f "$ready" ]; then
        echo "ERROR: server never published its endpoint" >&2
        kill -9 "$server_pid" 2>/dev/null || true
        kill "$watchdog_pid" 2>/dev/null || true
        return 1
    fi
    endpoint=$(cat "$ready")

    local client_pids=()
    for id in $(seq 0 $((clients - 1))); do
        ./target/release/rfl-client --connect "$endpoint" --id "$id" &
        client_pids+=("$!")
    done

    rc=0
    wait "$server_pid" || rc=$?
    for pid in "${client_pids[@]}"; do
        wait "$pid" || rc=$?
    done
    kill "$watchdog_pid" 2>/dev/null || true
    wait "$watchdog_pid" 2>/dev/null || true

    if [ "$rc" -ne 0 ]; then
        echo "ERROR: distributed smoke ($name) failed (rc=$rc); trace: $trace" >&2
        return "$rc"
    fi
    echo "== distributed smoke ($name) passed"
}

run_leg tcp "tcp://127.0.0.1:0" --expect-loss "$EXPECT_LOSS"
run_leg unix "unix:$(mktemp -u /tmp/rfl-smoke-XXXXXX.sock)" --expect-loss "$EXPECT_LOSS"
# Compressed uploads over real sockets: 8-bit quantized frames with error
# feedback must match the in-process compressed run bit-for-bit.
run_leg tcp-compressed "tcp://127.0.0.1:0" --compress quantize:8 --expect-oracle
# 64 concurrent client processes on one TCP endpoint: the reactor multiplexes
# all of them on its fixed shard budget, and the cohort's own pinned loss
# gates the run bit-exactly (same watchdog hard-kills a wedged leg).
LEG_CLIENTS=64 run_leg tcp-64 "tcp://127.0.0.1:0" --expect-loss "$EXPECT_LOSS_64"

echo "== distributed smoke passed (dense tcp + unix + 64-client fan-out bit-exact, compressed tcp == in-process oracle)"
