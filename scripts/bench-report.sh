#!/usr/bin/env bash
# Builds the micro-benchmarks and emits the kernel benchmark report
# (BENCH_PR5.json) via the bench_kernels binary, including scalar-vs-SIMD
# ratios for the hot kernels.
#
# Usage:
#   scripts/bench-report.sh               # full run, writes BENCH_PR5.json
#   scripts/bench-report.sh --smoke       # CI smoke: compile benches + 1-rep run
#   scripts/bench-report.sh --out F       # full run, write report to F
#   scripts/bench-report.sh --trajectory  # merge committed BENCH_PR*.json
#                                         # into a markdown table appended
#                                         # to EXPERIMENTS.md
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
TRAJECTORY=0
OUT="BENCH_PR5.json"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) SMOKE=1; shift ;;
    --trajectory) TRAJECTORY=1; shift ;;
    --out) OUT="$2"; shift 2 ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
done

# --trajectory: fold every committed per-PR report into one table so the
# performance history reads off EXPERIMENTS.md directly. Reports with a
# `legs` array (scale/connection grids) contribute one row per leg;
# kernel/alloc reports contribute their pinned round-loop loss. The
# section is delimited by markers and regenerated in place.
if [[ "$TRAJECTORY" == 1 ]]; then
  command -v jq > /dev/null || { echo "--trajectory needs jq" >&2; exit 1; }
  START='<!-- bench-trajectory:start -->'
  END='<!-- bench-trajectory:end -->'
  TMP=$(mktemp)
  {
    echo "$START"
    echo "## Benchmark trajectory (generated: scripts/bench-report.sh --trajectory)"
    echo
    echo "One row per committed report leg; kernel/alloc reports carry no"
    echo "legs and contribute their pinned round-loop loss only."
    echo
    echo "| report | leg | rounds/sec | peak RSS (MiB) | loss / acc |"
    echo "|---|---|---:|---:|---:|"
    for f in $(ls BENCH_PR*.json | sort -V); do
      rep="${f%.json}"
      jq -r --arg rep "$rep" '
        def fmt: if . == null then "—" else tostring end;
        def mib: if . == null then "—"
                 else (. / 1048576 * 10 | round / 10 | tostring) end;
        if (.legs // []) == [] then
          [$rep, "—", "—", "—", (.round_loop_final_loss | fmt)]
        else
          .legs[] | [$rep,
                     ((.name // ((.connections | tostring) + " conns")) | fmt),
                     (.rounds_per_sec | fmt),
                     (.peak_rss_bytes | mib),
                     ((.final_loss // .final_accuracy) | fmt)]
        end | "| " + join(" | ") + " |"' "$f"
    done
    echo "$END"
  } > "$TMP"
  # Drop any previous generated section, then append the fresh one.
  sed -i "/^${START}$/,/^${END}$/d" EXPERIMENTS.md
  # Trim trailing blank lines left by the removal so reruns are idempotent.
  sed -i -e :a -e '/^\n*$/{$d;N;ba' -e '}' EXPERIMENTS.md
  { echo; cat "$TMP"; } >> EXPERIMENTS.md
  rm -f "$TMP"
  echo "== trajectory table ($(grep -c '^| BENCH_PR' EXPERIMENTS.md) rows) appended to EXPERIMENTS.md"
  exit 0
fi

echo "== compiling criterion benches (no run)"
cargo bench -p rfl-bench --no-run

echo "== building bench_kernels (release)"
cargo build --release -p rfl-bench --bin bench_kernels

if [[ "$SMOKE" == 1 ]]; then
  echo "== smoke run (timings not meaningful)"
  ./target/release/bench_kernels --smoke > /dev/null
  echo "== bench smoke passed"
else
  echo "== full run -> $OUT"
  ./target/release/bench_kernels --out "$OUT"
  echo "== report written to $OUT"
fi
