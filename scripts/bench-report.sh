#!/usr/bin/env bash
# Builds the micro-benchmarks and emits the kernel benchmark report
# (BENCH_PR5.json) via the bench_kernels binary, including scalar-vs-SIMD
# ratios for the hot kernels.
#
# Usage:
#   scripts/bench-report.sh            # full run, writes BENCH_PR5.json
#   scripts/bench-report.sh --smoke    # CI smoke: compile benches + 1-rep run
#   scripts/bench-report.sh --out F    # full run, write report to F
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
OUT="BENCH_PR5.json"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) SMOKE=1; shift ;;
    --out) OUT="$2"; shift 2 ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
done

echo "== compiling criterion benches (no run)"
cargo bench -p rfl-bench --no-run

echo "== building bench_kernels (release)"
cargo build --release -p rfl-bench --bin bench_kernels

if [[ "$SMOKE" == 1 ]]; then
  echo "== smoke run (timings not meaningful)"
  ./target/release/bench_kernels --smoke > /dev/null
  echo "== bench smoke passed"
else
  echo "== full run -> $OUT"
  ./target/release/bench_kernels --out "$OUT"
  echo "== report written to $OUT"
fi
