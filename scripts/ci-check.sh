#!/usr/bin/env bash
# Runs the exact same checks as .github/workflows/ci.yml, locally.
# Usage: scripts/ci-check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release --workspace"
cargo build --release --workspace

echo "== cargo test -q --workspace"
cargo test -q --workspace

echo "== RFL_THREADS=4 cargo test -q --workspace (determinism contract)"
RFL_THREADS=4 cargo test -q --workspace

echo "== RFL_SIMD=0 cargo test -q --workspace (scalar-fallback contract)"
RFL_SIMD=0 cargo test -q --workspace

echo "== distributed smoke (multi-process federation over sockets)"
scripts/distributed-smoke.sh

echo "== RFL_THREADS=4 RFL_NET_THREADS=2 distributed smoke + bench_scale --quick (threaded leg)"
RFL_THREADS=4 RFL_NET_THREADS=2 scripts/distributed-smoke.sh
RFL_THREADS=4 RFL_NET_THREADS=2 cargo run --release -p rfl-bench --bin bench_scale -- --quick > /dev/null

echo "== ext_lossy --scale quick smoke"
cargo build --release -p rfl-bench --bin ext_lossy
./target/release/ext_lossy --scale quick --seeds 1 --out none > /dev/null

echo "== ext_compress --quick (compression byte-honesty + trade-off gate)"
cargo run --release -p rfl-bench --bin ext_compress -- --quick > /dev/null

echo "== bench_alloc --quick (allocation-regression gate)"
cargo run --release -p rfl-bench --features alloc-count --bin bench_alloc -- --quick

echo "== bench_scale --quick (peak-RSS scaling gate, 100k registered / 1% sampled)"
cargo run --release -p rfl-bench --bin bench_scale -- --quick > /dev/null

echo "== bench_connections --quick (reactor gate: fixed threads, exact bytes at 4096 conns)"
cargo run --release -p rfl-bench --bin bench_connections -- --quick > /dev/null

echo "== all CI checks passed"
