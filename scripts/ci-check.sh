#!/usr/bin/env bash
# Runs the exact same checks as .github/workflows/ci.yml, locally.
# Usage: scripts/ci-check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release --workspace"
cargo build --release --workspace

echo "== cargo test -q --workspace"
cargo test -q --workspace

echo "== all CI checks passed"
