#!/bin/bash
# Regenerates every table and figure of the paper (quick scale).
# Usage: ./run_experiments.sh [--scale quick|full] [--seeds N]
set -u
ARGS="${@:---scale quick --seeds 2}"
BIN=./target/release
LOG=results/logs
mkdir -p results "$LOG"
for exp in tab3_delta_size theory_convergence ablation_delta fig01_tsne \
           fig09_params fig11_fairness fig12_privacy tab1_cross_silo \
           tab2_cross_device fig02_03_mnist_curves fig04_05_cifar_curves \
           fig06_07_sent140_curves fig08_femnist fig10_efficiency \
           ext_future_work ext_compression ext_stragglers; do
  echo "=== $exp ($(date +%H:%M:%S)) ==="
  $BIN/$exp $ARGS > "$LOG/$exp.txt" 2>&1
  echo "    done ($(date +%H:%M:%S))"
done
echo ALL_EXPERIMENTS_DONE
