//! # rfedavg
//!
//! Umbrella crate for the reproduction of *Distribution-Regularized
//! Federated Learning on Non-IID Data* (Wang et al., ICDE 2023).
//!
//! Re-exports the workspace crates under one roof:
//!
//! * [`tensor`] — dense f32 tensors ([`rfl_tensor`]);
//! * [`nn`] — layers, losses, optimizers, models ([`rfl_nn`]);
//! * [`data`] — synthetic federated datasets & partitioners ([`rfl_data`]);
//! * [`core`] — the FL framework and the paper's algorithms ([`rfl_core`]);
//! * [`metrics`] — experiment statistics ([`rfl_metrics`]);
//! * [`viz`] — t-SNE feature visualization ([`rfl_viz`]).
//!
//! ## Quickstart
//!
//! ```
//! use rfedavg::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // 1. A non-IID federation: Gaussian-mixture data, similarity-0% split.
//! let mut rng = StdRng::seed_from_u64(0);
//! let spec = rfedavg::data::synth::gaussian::GaussianMixtureSpec::default_spec();
//! let pool = spec.generate(240, None, &mut rng);
//! let parts = rfedavg::data::partition::similarity(pool.labels(), 6, 0.0, &mut rng);
//! let test = spec.generate(100, None, &mut rng);
//! let data = rfedavg::data::FederatedData::from_partition(&pool, &parts, test);
//!
//! // 2. Train with the paper's rFedAvg+ (Algorithm 2).
//! let cfg = FlConfig { rounds: 5, parallel: false, ..FlConfig::cross_silo() };
//! let mut fed = Federation::new(
//!     &data,
//!     ModelFactory::linear_net(10, 6, 4, 1e-3),
//!     OptimizerFactory::sgd(0.1),
//!     &cfg,
//!     0,
//! );
//! let mut algo = RFedAvgPlus::new(1e-3);
//! let history = Trainer::new(cfg).run(&mut algo, &mut fed);
//! assert!(history.final_accuracy().unwrap() > 0.25);
//! ```

pub use rfl_core as core;
pub use rfl_data as data;
pub use rfl_metrics as metrics;
pub use rfl_nn as nn;
pub use rfl_tensor as tensor;
pub use rfl_viz as viz;

/// One-stop imports for applications.
pub mod prelude {
    pub use rfl_core::prelude::*;
    pub use rfl_core::{Federation, FlConfig, ModelFactory, OptimizerFactory};
}
